// Package a is unusedallow golden testdata: one used directive, one
// stale one, one stale-but-kept via meta-suppression, and one orphan
// meta-directive that keeps nothing.
package a

import "time"

// Boundary timestamps a log line; the wallclock directive below is
// used and must not be flagged.
func Boundary() time.Time {
	return time.Now() //lint:allow wallclock golden testdata needs a used directive
}

// Version is guarded by a directive nothing on the line can trigger.
var Version = 3 //lint:allow seededrand nothing here is random // want "stale //lint:allow seededrand"

// Build keeps its stale directive through the meta-suppression on the
// line above it.
//
//lint:allow unusedallow golden testdata keeps this one deliberately
var Build = 4 //lint:allow mapiter nothing here iterates a map

// Extra sits under an orphan meta-directive suppressing no stale
// directive; the hygiene check flags the meta-directive itself.
//
//lint:allow unusedallow nothing below is stale // want "stale //lint:allow unusedallow"
var Extra = 5
