// Package sim stands in for the scheduler package: goroleak exempts
// it by import-path suffix, because its raw spawns are the process
// accounting the rest of the repository is required to use. This
// spawn is untied on purpose — the test asserts it is not reported.
package sim

// Pump spawns the scheduler's own worker goroutine.
func Pump(ch chan int) {
	go func() {
		for range ch {
		}
	}()
}
