// Package a is goroleak golden testdata: two untied spawns, every
// recognized tie shape, and one suppressed fire-and-forget.
package a

import (
	"context"
	"sync"
)

// Leak spawns a bare goroutine with no lifetime anchor.
func Leak() {
	go func() { _ = 1 }() // want "not tied to any lifetime"
}

func work() {}

// LeakNamed spawns a named function with no anchor either.
func LeakNamed() {
	go work() // want "not tied to any lifetime"
}

// TiedWaitGroup pairs Add before the spawn with Done inside it.
func TiedWaitGroup() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
	}()
	wg.Wait()
}

// TiedNamedWaitGroup ties a named-function spawn through the Add in
// the spawning function; the callee owns the Done.
func TiedNamedWaitGroup(wg *sync.WaitGroup) {
	wg.Add(1)
	go work()
	wg.Wait()
}

// TiedContext hands the goroutine a cancellation scope.
func TiedContext(ctx context.Context) {
	go watch(ctx)
}

func watch(ctx context.Context) { <-ctx.Done() }

// TiedDone watches a stop channel.
func TiedDone(done chan struct{}) {
	go func() {
		<-done
	}()
}

// TiedRange drains a done channel by ranging over it.
func TiedRange(done chan struct{}) {
	go func() {
		for range done {
		}
	}()
}

// Allowed documents a deliberate fire-and-forget spawn.
func Allowed() {
	go func() { _ = 2 }() //lint:allow goroleak golden testdata documents a deliberate fire-and-forget spawn
}
