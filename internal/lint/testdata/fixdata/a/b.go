// This file lacks the errors import, so its fix must insert one.
package a

import "fmt"

// Absent reports whether err is not the sentinel.
func Absent(err error) bool {
	fmt.Println("checking")
	return err != ErrGone
}
