// Package a is fix-engine testdata: senterr findings with suggested
// fixes plus a stale directive. The tests copy this directory to a
// temp dir before applying fixes.
package a

import (
	"errors"
	"fmt"
)

// ErrGone is the sentinel the comparisons below match by identity.
var ErrGone = errors.New("gone")

// Check compares by identity; the fix rewrites to errors.Is without
// touching the import block (errors is already imported here).
func Check(err error) error {
	if err == ErrGone {
		return nil
	}
	return fmt.Errorf("check: %w", err)
}

// Stale carries a directive that suppresses nothing; its fix deletes
// the comment.
var Stale = 1 //lint:allow senterr nothing on this line compares errors
