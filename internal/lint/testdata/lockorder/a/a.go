// Package a is lockorder golden testdata: it exports a lock class and
// a helper that acquires it, so the dependent package b witnesses
// cross-package edges purely through imported facts.
package a

import "sync"

// A carries the exported lock class a.A.Mu.
type A struct{ Mu sync.Mutex }

// Shared is the instance package b locks through LockShared.
var Shared = &A{}

// LockShared acquires and releases the shared lock; a caller holding
// its own lock contributes a cross-package edge through this helper.
func LockShared() {
	Shared.Mu.Lock()
	Shared.Mu.Unlock()
}

// Pair holds two locks always taken in the same order — the negative
// case: first→second edges from two functions form no cycle.
type Pair struct {
	first  sync.Mutex
	second sync.Mutex
}

// Both nests the locks in the blessed order.
func (p *Pair) Both() {
	p.first.Lock()
	p.second.Lock()
	p.second.Unlock()
	p.first.Unlock()
}

// BothDeferred nests them in the same order through defer.
func (p *Pair) BothDeferred() {
	p.first.Lock()
	defer p.first.Unlock()
	p.second.Lock()
	p.second.Unlock()
}
