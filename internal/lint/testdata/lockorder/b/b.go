// Package b imports a and closes a cross-package lock cycle: Cross
// acquires b.B.mu → a.A.Mu (through the imported helper's fact), Back
// acquires the same two classes in the opposite order directly.
package b

import (
	"sync"

	"ofc/lofake/a"
)

// B carries the lock class b.B.mu.
type B struct{ mu sync.Mutex }

// Cross calls into a while holding mu: the edge b.B.mu → a.A.Mu
// travels through the imported fact for a.LockShared.
func (b *B) Cross() {
	b.mu.Lock()
	defer b.mu.Unlock()
	a.LockShared()
}

// Back closes the cycle; the finding anchors at the second
// acquisition of the lexicographically smallest class's out-edge.
func (b *B) Back() {
	a.Shared.Mu.Lock()
	b.mu.Lock() // want "lock-order cycle"
	b.mu.Unlock()
	a.Shared.Mu.Unlock()
}

// R re-acquires its own lock class — the self-deadlock case.
type R struct{ mu sync.Mutex }

// Again double-locks.
func (r *R) Again() {
	r.mu.Lock()
	r.mu.Lock() // want "re-acquired while already held"
	r.mu.Unlock()
	r.mu.Unlock()
}

// S re-acquires too, but documents why — the suppressed case.
type S struct{ mu sync.Mutex }

// Checked double-locks under a suppression directive.
func (s *S) Checked() {
	s.mu.Lock()
	s.mu.Lock() //lint:allow lockorder golden testdata exercises suppression of a program-pass finding
	s.mu.Unlock()
	s.mu.Unlock()
}
