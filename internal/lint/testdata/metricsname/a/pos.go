package mfake

import "ofc/internal/metrics"

func bad(c *metrics.Counters) int64 {
	c.Inc("cache_hits", 1)   // want "metric name .cache_hits. is not lowerCamel"
	c.Inc("CacheMisses", 1)  // want "metric name .CacheMisses. is not lowerCamel"
	c.Inc("readOps", 1)      // want "ambiguous metric name"
	c.Inc("readops", 1)      // want "ambiguous metric name"
	return c.Get("bad name") // want "metric name .bad name. is not lowerCamel"
}
