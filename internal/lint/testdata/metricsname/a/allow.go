package mfake

import "ofc/internal/metrics"

func allowed(c *metrics.Counters) {
	c.Inc("legacy_name", 1) //lint:allow metricsname preserved verbatim for external dashboard compatibility
}
