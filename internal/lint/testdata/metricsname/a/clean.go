package mfake

import "ofc/internal/metrics"

func clean(c *metrics.Counters) int64 {
	c.Inc("cacheHits", 1)
	c.Inc("cacheHits", 1) // the same spelling from many sites is one counter: fine
	c.Inc("p99Violations2xx", 1)
	name := "dyn" + "amic"
	c.Inc(name, 1) // dynamic names are out of static reach
	return c.Get("cacheHits")
}
