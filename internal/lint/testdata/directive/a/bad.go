package dirfake

// Each of these broken directives must itself be reported.

//lint:bogus nothing
var x = 1

func f() int {
	return x
}

//lint:allow wallclock
func g() {}

//lint:allow notananalyzer some reason here
func h() {}
