// Package a is atomicmix golden testdata: every access here is
// sanctioned (atomic call arguments, typed-atomic methods, address
// handoff), so the package itself is clean; package b mixes in plain
// accesses that the program pass catches through a's exported fact.
package a

import "sync/atomic"

// Stats mixes function-style and typed atomics plus one plain field.
type Stats struct {
	Hits int64
	Ops  atomic.Int64
	Name string
}

// Counter is a package-level atomically-accessed variable.
var Counter int64

// Touch performs only sanctioned accesses.
func Touch(s *Stats) {
	atomic.AddInt64(&s.Hits, 1)
	atomic.AddInt64(&Counter, 1)
	s.Ops.Add(1)
}

// Handoff takes the typed atomic's address for a caller to use
// through methods — sanctioned, not a plain access.
func Handoff(s *Stats) *atomic.Int64 {
	return &s.Ops
}
