// Package b accesses package a's atomically-maintained locations with
// plain loads and stores — the cross-package mix the program pass
// exists to catch.
package b

import "ofc/amfake/a"

// Report reads the counters without atomics.
func Report(s *a.Stats) int64 {
	total := s.Hits    // want "plain access to"
	total += a.Counter // want "plain access to"
	snapshot := s.Ops  // want "plain access to"
	_ = snapshot
	return total
}

// Label reads the never-atomic field — no finding.
func Label(s *a.Stats) string {
	return s.Name
}

// Reset documents why its plain store is safe — the suppressed case.
func Reset(s *a.Stats) {
	s.Hits = 0 //lint:allow atomicmix reset runs before the simulation publishes the struct
}
