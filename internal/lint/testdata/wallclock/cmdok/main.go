package main

import (
	"fmt"
	"time"
)

// Command binaries report host wall time by design; the wallclock
// invariant only binds code under internal/.
func main() {
	start := time.Now()
	fmt.Println(time.Since(start))
}
