package simfake

import "time"

// Duration arithmetic, constants and formatting never observe the wall
// clock, so none of this is flagged.
func clean(d time.Duration) string {
	deadline := 5 * time.Millisecond
	if d > deadline {
		d = deadline
	}
	return d.Round(time.Microsecond).String()
}
