package simfake

import "time"

// A justified host-clock read carries a suppression directive with a
// mandatory reason.
func hostNow() time.Time {
	return time.Now() //lint:allow wallclock this measures real host latency of a non-simulated algorithm
}
