package simfake

import "time"

// _test.go files are allowlisted: tests legitimately measure host
// time (e.g. benchmark-style assertions).
func hostElapsed() time.Duration {
	start := time.Now()
	return time.Since(start)
}
