package simfake

import "time"

func bad() time.Time {
	time.Sleep(time.Millisecond)        // want "time.Sleep reads the host clock"
	t := time.Now()                     // want "time.Now reads the host clock"
	_ = time.Since(t)                   // want "time.Since reads the host clock"
	<-time.After(time.Second)           // want "time.After reads the host clock"
	tick := time.NewTicker(time.Second) // want "time.NewTicker reads the host clock"
	tick.Stop()
	return time.Now() // want "time.Now reads the host clock"
}
