package randfake

import "math/rand"

func bad() float64 {
	rand.Seed(42)          // want "rand.Seed reseeds the process-global generator"
	if rand.Intn(2) == 0 { // want "global rand.Intn draws from process-wide state"
		return rand.Float64() // want "global rand.Float64 draws from process-wide state"
	}
	rand.Shuffle(3, func(i, j int) {}) // want "global rand.Shuffle draws from process-wide state"
	return rand.ExpFloat64()           // want "global rand.ExpFloat64 draws from process-wide state"
}
