package randfake

import "math/rand"

// A directive on the line above the finding also suppresses it.
func allowed() int {
	//lint:allow seededrand nonce generation where reproducibility is explicitly unwanted
	return rand.Int()
}
