package randfake

import "math/rand"

// Explicitly seeded private generators are the blessed pattern:
// rand.New/NewSource/NewZipf construct streams, methods on *rand.Rand
// consume them.
func clean(seed int64) float64 {
	rng := rand.New(rand.NewSource(seed))
	z := rand.NewZipf(rng, 1.2, 1, 100)
	rng.Shuffle(3, func(i, j int) {})
	return rng.Float64() + float64(z.Uint64()) + float64(rng.Intn(10))
}
