package lint

import (
	"fmt"
	"os"
	"sort"
)

// SuggestedFix support: an analyzer attaches a Fix — pure textual
// edits, expressed as byte offsets into the flagged file — to a
// finding, and `ofc-lint -fix` applies every unsuppressed fix in one
// deterministic pass. Fixes are required to be idempotent through the
// analyzer: applying a fix removes the pattern that produced the
// finding, so a second run proposes no further edits (the fix-clean CI
// step asserts exactly that on the repository).

// TextEdit replaces file[start:end) with NewText.
type TextEdit struct {
	File  string `json:"file"`
	Start int    `json:"start"`
	End   int    `json:"end"`
	// NewText is the replacement; empty deletes the span.
	NewText string `json:"newText"`
	// TrimBlankLine additionally removes the whole line when the edit
	// leaves it blank — used by comment-deletion fixes so a directive
	// on its own line doesn't leave an empty one behind.
	TrimBlankLine bool `json:"trimBlankLine,omitempty"`
}

// Fix is one suggested resolution: a short description plus the edits
// that implement it.
type Fix struct {
	Message string     `json:"message"`
	Edits   []TextEdit `json:"edits"`
}

// FixResult summarizes one ApplyFixes run.
type FixResult struct {
	// Applied counts findings whose fix was applied in full.
	Applied int
	// Skipped counts findings dropped because an edit overlapped one
	// already taken (first-in-position order wins).
	Skipped int
	// Files lists every rewritten file, sorted.
	Files []string
}

// ApplyFixes applies the suggested fixes of every unsuppressed finding
// to the files on disk. Edits are deduplicated (two findings may both
// insert the same import), checked for overlap — the finding earlier
// in the deterministic order wins, later conflicting fixes are skipped
// and left for a second run — and applied back-to-front so offsets
// stay valid.
func ApplyFixes(findings []Finding) (*FixResult, error) {
	type edit struct {
		TextEdit
		finding int // index, for per-finding accounting
	}
	res := &FixResult{}
	var edits []edit
	taken := map[TextEdit]bool{}
	skipped := map[int]bool{}
	for i, f := range findings {
		if f.Suppressed || f.Fix == nil {
			continue
		}
		for _, e := range f.Fix.Edits {
			if e.Start < 0 || e.End < e.Start {
				return nil, fmt.Errorf("lint: fix for %s has invalid span [%d,%d)", f, e.Start, e.End)
			}
			if taken[e] {
				continue // identical edit from another finding
			}
			taken[e] = true
			edits = append(edits, edit{e, i})
		}
	}
	sort.Slice(edits, func(i, j int) bool {
		if edits[i].File != edits[j].File {
			return edits[i].File < edits[j].File
		}
		if edits[i].Start != edits[j].Start {
			return edits[i].Start < edits[j].Start
		}
		return edits[i].End < edits[j].End
	})

	// Drop whole findings any of whose edits overlap an earlier edit.
	lastEnd := map[string]int{}
	for _, e := range edits {
		if e.Start < lastEnd[e.File] {
			skipped[e.finding] = true
			continue
		}
		lastEnd[e.File] = e.End
	}

	byFile := map[string][]edit{}
	for _, e := range edits {
		if skipped[e.finding] {
			continue
		}
		byFile[e.File] = append(byFile[e.File], e)
	}
	var files []string
	for f := range byFile {
		files = append(files, f)
	}
	sort.Strings(files)

	for _, name := range files {
		src, err := os.ReadFile(name)
		if err != nil {
			return nil, fmt.Errorf("lint: applying fixes: %v", err)
		}
		out := src
		fes := byFile[name]
		for i := len(fes) - 1; i >= 0; i-- {
			e := fes[i]
			if e.End > len(out) {
				return nil, fmt.Errorf("lint: fix span [%d,%d) past end of %s", e.Start, e.End, name)
			}
			start, end := e.Start, e.End
			if e.TrimBlankLine && e.NewText == "" {
				start, end = widenToBlankLine(out, start, end)
			}
			out = append(append(append([]byte{}, out[:start]...), e.NewText...), out[end:]...)
		}
		info, err := os.Stat(name)
		if err != nil {
			return nil, err
		}
		if err := os.WriteFile(name, out, info.Mode().Perm()); err != nil {
			return nil, fmt.Errorf("lint: applying fixes: %v", err)
		}
		res.Files = append(res.Files, name)
	}

	for i, f := range findings {
		if f.Suppressed || f.Fix == nil {
			continue
		}
		if skipped[i] {
			res.Skipped++
		} else {
			res.Applied++
		}
	}
	return res, nil
}

// widenToBlankLine extends a deletion span to swallow the whole line —
// including its trailing newline — when everything else on the line is
// whitespace.
func widenToBlankLine(src []byte, start, end int) (int, int) {
	ls := start
	for ls > 0 && src[ls-1] != '\n' {
		if src[ls-1] != ' ' && src[ls-1] != '\t' {
			// Code precedes the span — a trailing comment. Still eat
			// the padding between the code and the comment.
			return ls, end
		}
		ls--
	}
	le := end
	for le < len(src) && src[le] != '\n' {
		if src[le] != ' ' && src[le] != '\t' {
			return start, end // code follows the span
		}
		le++
	}
	if le < len(src) {
		le++ // the newline itself
	}
	return ls, le
}
