// Package lint is a self-contained static-analysis engine encoding the
// repository's determinism and correctness invariants: simulation code
// may not read the host clock, randomness must be seeded and threaded
// explicitly, sentinel errors must be matched with errors.Is, blocking
// simulation operations may not run under a sync mutex, metric
// names must be lowerCamel and unambiguous, and map iteration order
// may not leak into sim-visible output.
//
// The engine is built only on the standard library (go/parser, go/ast,
// go/types, driven by `go list -json`), exposes a go/analysis-shaped
// Analyzer API, and honors `//lint:allow <analyzer> <reason>`
// suppression directives. The cmd/ofc-lint driver prints findings as
// `file:line: [analyzer] message` and exits non-zero when any
// unsuppressed finding remains — it is part of `make check`, so every
// number the experiment harness reports sits on a machine-checked
// determinism floor.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one named check, shaped after golang.org/x/tools'
// go/analysis so the checks could migrate there if the repo ever takes
// the dependency.
type Analyzer struct {
	// Name identifies the analyzer in findings and in
	// `//lint:allow <name> <reason>` directives.
	Name string
	// Doc is the one-paragraph invariant description.
	Doc string
	// Run inspects one package and reports findings through the pass.
	Run func(*Pass) error
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	report func(Finding)
}

// Path returns the package's import path.
func (p *Pass) Path() string { return p.Pkg.Path() }

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	position := p.Fset.Position(pos)
	p.report(Finding{
		File:     position.Filename,
		Line:     position.Line,
		Col:      position.Column,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// InTestFile reports whether pos falls in a _test.go file.
func (p *Pass) InTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.Position(pos).Filename, "_test.go")
}

// Finding is one diagnostic, suppressed or not.
type Finding struct {
	File     string
	Line     int
	Col      int
	Analyzer string
	Message  string
	// Suppressed is set when a `//lint:allow` directive covers the
	// finding.
	Suppressed bool
}

// String renders the driver's one-line format.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", f.File, f.Line, f.Analyzer, f.Message)
}

// All returns the repository's analyzer suite.
func All() []*Analyzer {
	return []*Analyzer{Wallclock, SeededRand, SentErr, LockedRPC, MetricsName, MapIter}
}

// ByName resolves a comma-separated analyzer list against All,
// erroring on unknown names.
func ByName(names string) ([]*Analyzer, error) {
	if names == "" {
		return All(), nil
	}
	byName := map[string]*Analyzer{}
	for _, a := range All() {
		byName[a.Name] = a
	}
	var out []*Analyzer
	for _, n := range strings.Split(names, ",") {
		n = strings.TrimSpace(n)
		a, ok := byName[n]
		if !ok {
			return nil, fmt.Errorf("lint: unknown analyzer %q", n)
		}
		out = append(out, a)
	}
	return out, nil
}

// Run applies each analyzer to each package, resolves suppression
// directives, and returns all findings (suppressed ones marked) sorted
// by position. Malformed directives are themselves findings.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Finding, error) {
	var findings []Finding
	sup := newSuppressor()
	for _, pkg := range pkgs {
		sup.scan(pkg)
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				report:   func(f Finding) { findings = append(findings, f) },
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("lint: %s on %s: %w", a.Name, pkg.Path, err)
			}
		}
	}
	findings = append(findings, sup.malformed...)
	for i := range findings {
		if sup.allows(findings[i]) {
			findings[i].Suppressed = true
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Analyzer < b.Analyzer
	})
	return findings, nil
}

// Unsuppressed filters findings down to the ones that gate the build.
func Unsuppressed(findings []Finding) []Finding {
	var out []Finding
	for _, f := range findings {
		if !f.Suppressed {
			out = append(out, f)
		}
	}
	return out
}
