// Package lint is a self-contained static-analysis engine encoding the
// repository's determinism and correctness invariants: simulation code
// may not read the host clock, randomness must be seeded and threaded
// explicitly, sentinel errors must be matched with errors.Is, blocking
// simulation operations may not run under a sync mutex, metric
// names must be lowerCamel and unambiguous, map iteration order
// may not leak into sim-visible output, lock classes must be acquired
// in one global order, no field may mix sync/atomic and plain access,
// and every spawned goroutine must be tied to a lifetime.
//
// The engine is built only on the standard library (go/parser, go/ast,
// go/types, driven by `go list -json`), exposes a go/analysis-shaped
// Analyzer API with serialized per-package Facts for whole-program
// checks, and honors `//lint:allow <analyzer> <reason>` suppression
// directives (stale ones are themselves findings). The cmd/ofc-lint
// driver prints findings as `file:line: [analyzer] message` (or -json
// for CI annotation), applies SuggestedFixes under -fix, and exits
// non-zero when any unsuppressed finding remains — it is part of
// `make check`, so every number the experiment harness reports sits on
// a machine-checked determinism floor.
package lint

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"io"
	"sort"
	"strings"
)

// Analyzer is one named check, shaped after golang.org/x/tools'
// go/analysis so the checks could migrate there if the repo ever takes
// the dependency.
type Analyzer struct {
	// Name identifies the analyzer in findings and in
	// `//lint:allow <name> <reason>` directives.
	Name string
	// Doc is the one-paragraph invariant description.
	Doc string
	// Run inspects one package and reports findings through the pass.
	// Optional: whole-program analyzers may only export facts.
	Run func(*Pass) error
	// Facts, optional, computes this package's exported fact. Packages
	// are analyzed in import order, so the facts of every dependency
	// are final and readable through Pass.Fact when it runs.
	Facts func(*Pass) (Fact, error)
	// FactType returns a pointer to a zero fact value for decoding.
	// Required when Facts is set.
	FactType func() Fact
	// RunProgram, optional, runs once after every package's facts are
	// exported and reports whole-program findings.
	RunProgram func(*ProgramPass) error
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	facts  *FactStore
	report func(Finding)
}

// Path returns the package's import path.
func (p *Pass) Path() string { return p.Pkg.Path() }

// Fact returns this analyzer's fact previously exported for pkg — a
// dependency of the current package, or the current package itself
// once exported — or nil.
func (p *Pass) Fact(pkg string) Fact {
	if p.facts == nil {
		return nil
	}
	return p.facts.Fact(p.Analyzer.Name, pkg)
}

// Site resolves pos into a fact site.
func (p *Pass) Site(pos token.Pos) Site {
	position := p.Fset.Position(pos)
	return Site{File: position.Filename, Line: position.Line, Col: position.Column}
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	position := p.Fset.Position(pos)
	p.report(Finding{
		File:     position.Filename,
		Line:     position.Line,
		Col:      position.Column,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// ReportFix records a finding at pos carrying a suggested fix.
func (p *Pass) ReportFix(pos token.Pos, fix *Fix, format string, args ...interface{}) {
	position := p.Fset.Position(pos)
	p.report(Finding{
		File:     position.Filename,
		Line:     position.Line,
		Col:      position.Column,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
		Fix:      fix,
	})
}

// InTestFile reports whether pos falls in a _test.go file.
func (p *Pass) InTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.Position(pos).Filename, "_test.go")
}

// Finding is one diagnostic, suppressed or not.
type Finding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
	// Suppressed is set when a `//lint:allow` directive covers the
	// finding.
	Suppressed bool `json:"suppressed"`
	// Fix, optional, is a textual edit that resolves the finding;
	// `ofc-lint -fix` applies it.
	Fix *Fix `json:"fix,omitempty"`
}

// String renders the driver's one-line format.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", f.File, f.Line, f.Analyzer, f.Message)
}

// EncodeJSON writes findings as a JSON array — the `ofc-lint -json`
// wire format consumed by CI annotation. A nil slice encodes as [].
func EncodeJSON(w io.Writer, findings []Finding) error {
	if findings == nil {
		findings = []Finding{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(findings)
}

// All returns the repository's analyzer suite.
func All() []*Analyzer {
	return []*Analyzer{
		Wallclock, SeededRand, SentErr, LockedRPC, MetricsName, MapIter,
		LockOrder, AtomicMix, GoroLeak, UnusedAllow,
	}
}

// ByName resolves a comma-separated analyzer list against All,
// erroring on unknown names.
func ByName(names string) ([]*Analyzer, error) {
	if names == "" {
		return All(), nil
	}
	byName := map[string]*Analyzer{}
	for _, a := range All() {
		byName[a.Name] = a
	}
	var out []*Analyzer
	for _, n := range strings.Split(names, ",") {
		n = strings.TrimSpace(n)
		a, ok := byName[n]
		if !ok {
			return nil, fmt.Errorf("lint: unknown analyzer %q", n)
		}
		out = append(out, a)
	}
	return out, nil
}

// Run applies each analyzer to each package in import order (facts of
// every dependency are final before a package is analyzed), runs
// whole-program passes over the complete fact store, resolves
// suppression directives, flags stale ones, and returns all findings
// (suppressed ones marked) sorted by (file, line, col, analyzer).
// Malformed directives are themselves findings. The sort plus the
// topological fact order make the output bit-identical across runs.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Finding, error) {
	var findings []Finding
	report := func(f Finding) { findings = append(findings, f) }
	sup := newSuppressor()
	store := NewFactStore()
	ordered := topoSort(pkgs)
	for _, pkg := range ordered {
		sup.scan(pkg)
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				facts:    store,
				report:   report,
			}
			if a.Run != nil {
				if err := a.Run(pass); err != nil {
					return nil, fmt.Errorf("lint: %s on %s: %w", a.Name, pkg.Path, err)
				}
			}
			if a.Facts != nil {
				fact, err := a.Facts(pass)
				if err != nil {
					return nil, fmt.Errorf("lint: %s facts on %s: %w", a.Name, pkg.Path, err)
				}
				if _, err := store.export(a, pkg.Path, fact); err != nil {
					return nil, err
				}
			}
		}
	}
	for _, a := range analyzers {
		if a.RunProgram == nil {
			continue
		}
		pp := &ProgramPass{Analyzer: a, Pkgs: ordered, Facts: store, report: report}
		if err := a.RunProgram(pp); err != nil {
			return nil, fmt.Errorf("lint: %s program pass: %w", a.Name, err)
		}
	}
	findings = append(findings, sup.malformed...)
	for i := range findings {
		if sup.allows(findings[i]) {
			findings[i].Suppressed = true
		}
	}
	findings = append(findings, staleAllows(sup, analyzers)...)
	sortFindings(findings)
	return dedupe(findings), nil
}

// sortFindings orders findings by (file, line, col, analyzer) — the
// determinism contract the self-run test asserts.
func sortFindings(findings []Finding) {
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}

// FindingsSorted reports whether findings are in the driver's
// deterministic order.
func FindingsSorted(findings []Finding) bool {
	return sort.SliceIsSorted(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Analyzer < b.Analyzer
	})
}

// dedupe drops adjacent identical findings — a whole-program pass can
// witness the same (position, analyzer, message) through two fact
// paths.
func dedupe(findings []Finding) []Finding {
	out := findings[:0]
	for i, f := range findings {
		if i > 0 {
			p := out[len(out)-1]
			if p.File == f.File && p.Line == f.Line && p.Col == f.Col &&
				p.Analyzer == f.Analyzer && p.Message == f.Message {
				continue
			}
		}
		out = append(out, f)
	}
	return out
}

// Unsuppressed filters findings down to the ones that gate the build.
func Unsuppressed(findings []Finding) []Finding {
	var out []Finding
	for _, f := range findings {
		if !f.Suppressed {
			out = append(out, f)
		}
	}
	return out
}

// typeName returns the qualified name of an expression's named type
// after stripping pointers, or "".
func typeName(t types.Type) string {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return obj.Name()
	}
	return obj.Pkg().Path() + "." + obj.Name()
}

// funcKey names a function or method the way facts index them:
// pkgpath.Func or pkgpath.Type.Method.
func funcKey(fn *types.Func) string {
	if fn.Pkg() == nil {
		return fn.Name()
	}
	sig, ok := fn.Type().(*types.Signature)
	if ok && sig.Recv() != nil {
		if tn := typeName(sig.Recv().Type()); tn != "" {
			return tn + "." + fn.Name()
		}
	}
	return fn.Pkg().Path() + "." + fn.Name()
}
