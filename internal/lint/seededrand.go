package lint

import (
	"go/ast"
	"go/types"
)

// SeededRand forbids the global math/rand convenience functions
// (rand.Intn, rand.Float64, rand.Seed, ...). They draw from a single
// process-wide generator, so any code path that touches them makes
// every downstream random stream depend on call order across the whole
// binary — the exact opposite of the seed-threaded reproducibility the
// experiments promise. Constructing private generators with
// rand.New(rand.NewSource(seed)) (or sim.Env.NewRand) stays legal.
var SeededRand = &Analyzer{
	Name: "seededrand",
	Doc:  "forbid global math/rand functions; thread rand.New(rand.NewSource(seed)) from configs instead",
	Run:  runSeededRand,
}

// seededRandAllowed are the math/rand package-level functions that
// build explicit generators rather than consuming the global one.
var seededRandAllowed = map[string]bool{
	"New":       true,
	"NewSource": true,
	"NewZipf":   true,
}

func runSeededRand(p *Pass) error {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := p.Info.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil || seededRandAllowed[fn.Name()] {
				return true
			}
			path := fn.Pkg().Path()
			if path != "math/rand" && path != "math/rand/v2" {
				return true
			}
			if fn.Type().(*types.Signature).Recv() != nil {
				return true // methods on an explicit *rand.Rand are the blessed pattern
			}
			if fn.Name() == "Seed" {
				p.Reportf(sel.Pos(), "rand.Seed reseeds the process-global generator; construct rand.New(rand.NewSource(seed)) and thread it instead")
			} else {
				p.Reportf(sel.Pos(), "global rand.%s draws from process-wide state and breaks seed-threaded reproducibility; use a local rand.New(rand.NewSource(seed))", fn.Name())
			}
			return true
		})
	}
	return nil
}
