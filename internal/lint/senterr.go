package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// SentErr forbids identity comparison (`==`, `!=`, `switch ... case`)
// against exported Err* sentinel values. Middleware wraps errors with
// fmt.Errorf("...: %w", err), and an identity comparison silently stops
// matching the moment a wrapping layer is inserted between producer and
// consumer — the bug that broke the faas OOM-retry path when the store
// resilience middleware landed. errors.Is matches through wrapping.
var SentErr = &Analyzer{
	Name: "senterr",
	Doc:  "forbid ==/!=/switch comparison against exported Err* sentinels; use errors.Is so wrapped errors still match",
	Run:  runSentErr,
}

func runSentErr(p *Pass) error {
	errType := types.Universe.Lookup("error").Type()
	// sentinel returns the name of the exported package-level Err*
	// error variable e refers to, or "".
	sentinel := func(e ast.Expr) string {
		var id *ast.Ident
		switch e := ast.Unparen(e).(type) {
		case *ast.Ident:
			id = e
		case *ast.SelectorExpr:
			id = e.Sel
		default:
			return ""
		}
		v, ok := p.Info.Uses[id].(*types.Var)
		if !ok || v.Pkg() == nil || v.Parent() != v.Pkg().Scope() {
			return "" // not package-level
		}
		if !strings.HasPrefix(v.Name(), "Err") || !v.Exported() {
			return ""
		}
		if !types.AssignableTo(v.Type(), errType) {
			return ""
		}
		return v.Name()
	}
	isNil := func(e ast.Expr) bool {
		id, ok := ast.Unparen(e).(*ast.Ident)
		if !ok {
			return false
		}
		_, isNilObj := p.Info.Uses[id].(*types.Nil)
		return isNilObj
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				if n.Op != token.EQL && n.Op != token.NEQ {
					return true
				}
				if isNil(n.X) || isNil(n.Y) {
					return true // err == nil / ErrFoo != nil are identity checks by design
				}
				name := sentinel(n.X)
				if name == "" {
					name = sentinel(n.Y)
				}
				if name != "" {
					p.Reportf(n.Pos(), "identity comparison with sentinel %s misses wrapped errors; use errors.Is(err, %s)", name, name)
				}
			case *ast.SwitchStmt:
				if n.Tag == nil {
					return true
				}
				tv, ok := p.Info.Types[n.Tag]
				if !ok || tv.Type == nil || !types.AssignableTo(tv.Type, errType) {
					return true
				}
				for _, stmt := range n.Body.List {
					cc, ok := stmt.(*ast.CaseClause)
					if !ok {
						continue
					}
					for _, e := range cc.List {
						if name := sentinel(e); name != "" {
							p.Reportf(e.Pos(), "switch on an error compares sentinel %s by identity; use if/else with errors.Is(err, %s)", name, name)
						}
					}
				}
			}
			return true
		})
	}
	return nil
}
