package lint

import (
	"bytes"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
	"strings"
)

// SentErr forbids identity comparison (`==`, `!=`, `switch ... case`)
// against exported Err* sentinel values. Middleware wraps errors with
// fmt.Errorf("...: %w", err), and an identity comparison silently stops
// matching the moment a wrapping layer is inserted between producer and
// consumer — the bug that broke the faas OOM-retry path when the store
// resilience middleware landed. errors.Is matches through wrapping.
var SentErr = &Analyzer{
	Name: "senterr",
	Doc:  "forbid ==/!=/switch comparison against exported Err* sentinels; use errors.Is so wrapped errors still match",
	Run:  runSentErr,
}

func runSentErr(p *Pass) error {
	errType := types.Universe.Lookup("error").Type()
	// sentinel returns the name of the exported package-level Err*
	// error variable e refers to, or "".
	sentinel := func(e ast.Expr) string {
		var id *ast.Ident
		switch e := ast.Unparen(e).(type) {
		case *ast.Ident:
			id = e
		case *ast.SelectorExpr:
			id = e.Sel
		default:
			return ""
		}
		v, ok := p.Info.Uses[id].(*types.Var)
		if !ok || v.Pkg() == nil || v.Parent() != v.Pkg().Scope() {
			return "" // not package-level
		}
		if !strings.HasPrefix(v.Name(), "Err") || !v.Exported() {
			return ""
		}
		if !types.AssignableTo(v.Type(), errType) {
			return ""
		}
		return v.Name()
	}
	isNil := func(e ast.Expr) bool {
		id, ok := ast.Unparen(e).(*ast.Ident)
		if !ok {
			return false
		}
		_, isNilObj := p.Info.Uses[id].(*types.Nil)
		return isNilObj
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				if n.Op != token.EQL && n.Op != token.NEQ {
					return true
				}
				if isNil(n.X) || isNil(n.Y) {
					return true // err == nil / ErrFoo != nil are identity checks by design
				}
				name, sentExpr, errExpr := sentinel(n.X), n.X, n.Y
				if name == "" {
					name, sentExpr, errExpr = sentinel(n.Y), n.Y, n.X
				}
				if name != "" {
					p.ReportFix(n.Pos(), senterrFix(p, f, n, errExpr, sentExpr),
						"identity comparison with sentinel %s misses wrapped errors; use errors.Is(err, %s)", name, name)
				}
			case *ast.SwitchStmt:
				if n.Tag == nil {
					return true
				}
				tv, ok := p.Info.Types[n.Tag]
				if !ok || tv.Type == nil || !types.AssignableTo(tv.Type, errType) {
					return true
				}
				for _, stmt := range n.Body.List {
					cc, ok := stmt.(*ast.CaseClause)
					if !ok {
						continue
					}
					for _, e := range cc.List {
						if name := sentinel(e); name != "" {
							p.Reportf(e.Pos(), "switch on an error compares sentinel %s by identity; use if/else with errors.Is(err, %s)", name, name)
						}
					}
				}
			}
			return true
		})
	}
	return nil
}

// senterrFix rewrites `err ==/!= ErrX` into `errors.Is(err, ErrX)` /
// `!errors.Is(err, ErrX)`, inserting the errors import when the file
// lacks it. Switch-case findings get no fix: turning a case list into
// an if/else chain is a structural edit a human should shape.
func senterrFix(p *Pass, f *ast.File, cmp *ast.BinaryExpr, errExpr, sentExpr ast.Expr) *Fix {
	var buf bytes.Buffer
	buf.WriteString("errors.Is(")
	if err := printer.Fprint(&buf, p.Fset, errExpr); err != nil {
		return nil
	}
	buf.WriteString(", ")
	if err := printer.Fprint(&buf, p.Fset, sentExpr); err != nil {
		return nil
	}
	buf.WriteString(")")
	repl := buf.String()
	if cmp.Op == token.NEQ {
		repl = "!" + repl
	}
	file := p.Fset.Position(cmp.Pos()).Filename
	fix := &Fix{
		Message: "replace identity comparison with errors.Is",
		Edits: []TextEdit{{
			File:    file,
			Start:   p.Fset.Position(cmp.Pos()).Offset,
			End:     p.Fset.Position(cmp.End()).Offset,
			NewText: repl,
		}},
	}
	if edit, ok := importErrorsEdit(p, f); ok {
		fix.Edits = append(fix.Edits, edit)
	}
	return fix
}

// importErrorsEdit builds the edit adding `"errors"` to the file's
// import block, or ok=false when it is already imported.
func importErrorsEdit(p *Pass, f *ast.File) (TextEdit, bool) {
	for _, imp := range f.Imports {
		if imp.Path.Value == `"errors"` {
			return TextEdit{}, false
		}
	}
	file := p.Fset.Position(f.Pos()).Filename
	for _, decl := range f.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.IMPORT {
			continue
		}
		if gd.Lparen.IsValid() {
			off := p.Fset.Position(gd.Lparen).Offset + 1
			return TextEdit{File: file, Start: off, End: off, NewText: "\n\t\"errors\""}, true
		}
		// Single import without parens: prepend a standalone line.
		off := p.Fset.Position(gd.Pos()).Offset
		return TextEdit{File: file, Start: off, End: off, NewText: "import \"errors\"\n\n"}, true
	}
	off := p.Fset.Position(f.Name.End()).Offset
	return TextEdit{File: file, Start: off, End: off, NewText: "\n\nimport \"errors\""}, true
}
