package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one type-checked compilation unit under analysis. A Go
// package with in-package test files is loaded as one unit (GoFiles +
// TestGoFiles, mirroring how the test binary compiles); external
// _test packages form a second unit.
type Package struct {
	Path  string
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Loader parses and type-checks packages with one shared FileSet and
// one shared source importer, so stdlib dependencies are checked once
// across the whole run. The source importer resolves module-local
// import paths through the go command, keeping go.mod dependency-free.
// Packages loaded explicitly with LoadDirAs are additionally recorded
// as import overrides, so multi-package testdata trees (a fact-
// exporting package plus a dependent that imports it under a fake
// path) type-check without existing on the build list.
type Loader struct {
	Fset *token.FileSet
	imp  types.Importer

	// overrides maps import paths of LoadDirAs-loaded packages; the
	// chained importer consults it before the source importer, and
	// LoadPatterns never populates it, so production runs resolve
	// imports exactly as the go command does.
	overrides map[string]*types.Package
}

// NewLoader returns a fresh loader.
func NewLoader() *Loader {
	fset := token.NewFileSet()
	l := &Loader{Fset: fset, overrides: map[string]*types.Package{}}
	l.imp = &chainImporter{l: l, src: importer.ForCompiler(fset, "source", nil)}
	return l
}

// chainImporter resolves LoadDirAs overrides first, then falls back to
// the source importer.
type chainImporter struct {
	l   *Loader
	src types.Importer
}

func (c *chainImporter) Import(path string) (*types.Package, error) {
	if pkg, ok := c.l.overrides[path]; ok {
		return pkg, nil
	}
	return c.src.Import(path)
}

// listedPkg is the subset of `go list -json` output the loader needs.
type listedPkg struct {
	Dir          string
	ImportPath   string
	GoFiles      []string
	TestGoFiles  []string
	XTestGoFiles []string
	Error        *struct{ Err string }
}

// LoadPatterns enumerates packages via `go list -json` run in dir and
// returns each as one or two type-checked units.
func (l *Loader) LoadPatterns(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{"list", "-json=Dir,ImportPath,GoFiles,TestGoFiles,XTestGoFiles,Error", "--"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("lint: go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	var listed []listedPkg
	dec := json.NewDecoder(&stdout)
	for {
		var p listedPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: decoding go list output: %v", err)
		}
		listed = append(listed, p)
	}
	sort.Slice(listed, func(i, j int) bool { return listed[i].ImportPath < listed[j].ImportPath })

	var pkgs []*Package
	for _, p := range listed {
		if p.Error != nil {
			return nil, fmt.Errorf("lint: %s: %s", p.ImportPath, p.Error.Err)
		}
		units := []struct {
			path  string
			files []string
		}{
			{p.ImportPath, append(append([]string{}, p.GoFiles...), p.TestGoFiles...)},
			{p.ImportPath + "_test", p.XTestGoFiles},
		}
		for _, u := range units {
			if len(u.files) == 0 {
				continue
			}
			abs := make([]string, len(u.files))
			for i, f := range u.files {
				abs[i] = filepath.Join(p.Dir, f)
			}
			pkg, err := l.check(u.path, p.Dir, abs)
			if err != nil {
				return nil, err
			}
			pkgs = append(pkgs, pkg)
		}
	}
	return pkgs, nil
}

// LoadDirAs parses and type-checks every .go file in dir as a package
// with the given import path. The golden-file tests use it to check
// testdata packages (which `go list ./...` deliberately skips) under
// analyzer-relevant paths such as "ofc/internal/x".
func (l *Loader) LoadDirAs(dir, path string) (*Package, error) {
	names, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil {
		return nil, err
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("lint: no .go files in %s", dir)
	}
	sort.Strings(names)
	pkg, err := l.check(path, dir, names)
	if err != nil {
		return nil, err
	}
	l.overrides[path] = pkg.Types
	return pkg, nil
}

// check parses and type-checks one unit.
func (l *Loader) check(path, dir string, filenames []string) (*Package, error) {
	var files []*ast.File
	for _, name := range filenames {
		f, err := parser.ParseFile(l.Fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: parse %s: %v", name, err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	var typeErrs []error
	conf := types.Config{
		Importer: l.imp,
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, err := conf.Check(path, l.Fset, files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("lint: type-checking %s: %v", path, typeErrs[0])
	}
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %v", path, err)
	}
	return &Package{Path: path, Dir: dir, Fset: l.Fset, Files: files, Types: tpkg, Info: info}, nil
}
