package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// parseDirPkg builds the minimal Package the suppressor needs: parsed
// files plus their FileSet. No type-checking — directives are pure
// comment syntax.
func parseDirPkg(t *testing.T, src string) *Package {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "d.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	return &Package{Path: "p", Fset: fset, Files: []*ast.File{f}}
}

func TestDirectiveAdjacency(t *testing.T) {
	s := newSuppressor()
	s.scan(parseDirPkg(t, `package p

//lint:allow wallclock covers the next line
var a = 1

var b = 2 //lint:allow senterr trailing covers its own line

var c = 3

//lint:allow wallclock first of two analyzers covering line 11
var d = 4 //lint:allow senterr second of two analyzers covering line 11
`))
	if len(s.malformed) != 0 {
		t.Fatalf("malformed = %v, want none", s.malformed)
	}
	cases := []struct {
		line     int
		analyzer string
		want     bool
	}{
		{4, "wallclock", true},        // directive on the line above
		{3, "wallclock", true},        // directive on the line itself
		{5, "wallclock", false},       // two lines below the directive
		{6, "senterr", true},          // trailing directive
		{6, "wallclock", false},       // right line, wrong analyzer
		{8, "senterr", false},         // unrelated line
		{6, directiveAnalyzer, false}, // directive findings are never suppressible
		{11, "wallclock", true},       // two analyzers cover one line: above...
		{11, "senterr", true},         // ...and trailing
		{11, "mapiter", false},        // but only the named ones
	}
	for _, c := range cases {
		got := s.allows(Finding{File: "d.go", Line: c.line, Analyzer: c.analyzer})
		if got != c.want {
			t.Errorf("allows(d.go:%d %s) = %v, want %v", c.line, c.analyzer, got, c.want)
		}
	}
}

func TestDirectiveUsedTracking(t *testing.T) {
	s := newSuppressor()
	s.scan(parseDirPkg(t, `package p

var a = 1 //lint:allow wallclock used below
var b = 2 //lint:allow wallclock never used
`))
	if !s.allows(Finding{File: "d.go", Line: 3, Analyzer: "wallclock"}) {
		t.Fatal("expected line-3 directive to suppress")
	}
	if !s.directives[0].used {
		t.Error("suppressing directive not marked used")
	}
	if s.directives[1].used {
		t.Error("untouched directive marked used")
	}
}

// TestDirectiveOffsets pins the byte span the unusedallow deletion fix
// relies on: exactly the comment text, nothing around it.
func TestDirectiveOffsets(t *testing.T) {
	src := `package p

var a = 1 //lint:allow wallclock span check
`
	s := newSuppressor()
	s.scan(parseDirPkg(t, src))
	if len(s.directives) != 1 {
		t.Fatalf("directives = %d, want 1", len(s.directives))
	}
	d := s.directives[0]
	if got := src[d.start:d.end]; got != "//lint:allow wallclock span check" {
		t.Errorf("directive span = %q", got)
	}
	if d.analyzer != "wallclock" || d.reason != "span check" {
		t.Errorf("parsed directive = %q %q", d.analyzer, d.reason)
	}
}

func TestDirectiveReasonWhitespace(t *testing.T) {
	s := newSuppressor()
	s.scan(parseDirPkg(t, `package p

var a = 1 //lint:allow wallclock    padded   reason
`))
	if len(s.malformed) != 0 || len(s.directives) != 1 {
		t.Fatalf("malformed=%v directives=%d", s.malformed, len(s.directives))
	}
	if got := s.directives[0].reason; got != "padded   reason" {
		t.Errorf("reason = %q, want inner whitespace preserved and outer trimmed", got)
	}
}

func TestDirectiveMalformedShapes(t *testing.T) {
	s := newSuppressor()
	s.scan(parseDirPkg(t, `package p

//lint:allow
var a = 1

//lint:allow wallclock
var b = 2

//lint:deny wallclock reason
var c = 3

//lint:allow notananalyzer with a reason
var d = 4
`))
	if len(s.directives) != 0 {
		t.Fatalf("well-formed directives = %d, want 0", len(s.directives))
	}
	var got []string
	for _, f := range s.malformed {
		if f.Analyzer != directiveAnalyzer {
			t.Errorf("malformed finding analyzer = %q, want %q", f.Analyzer, directiveAnalyzer)
		}
		switch {
		case strings.Contains(f.Message, "malformed"):
			got = append(got, "malformed")
		case strings.Contains(f.Message, "unknown lint directive"):
			got = append(got, "unknown-verb")
		case strings.Contains(f.Message, "unknown analyzer"):
			got = append(got, "unknown-analyzer")
		default:
			got = append(got, "?")
		}
	}
	want := []string{"malformed", "malformed", "unknown-verb", "unknown-analyzer"}
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Errorf("malformed shapes = %v, want %v", got, want)
	}
}
