package lint

import (
	"fmt"
	"regexp"
	"testing"
)

// The golden harness: an analyzer set runs over one or more testdata
// packages and its findings are matched against `// want "regexp"`
// comments placed on the offending lines. Every unsuppressed finding
// must be wanted, every want must be found, and suppressed findings
// (the `//lint:allow` cases) are counted explicitly so a silent
// analyzer can't masquerade as a working suppression. Multi-package
// golden trees (the cross-package fact cases) list the dependency
// first: LoadDirAs registers each package as an import override for
// the ones after it.

// goldenLoader is shared so the stdlib and ofc/internal dependencies
// of the testdata packages are type-checked once per test binary.
var goldenLoader = NewLoader()

var wantRe = regexp.MustCompile(`// want "([^"]*)"`)

type want struct {
	line    int
	re      *regexp.Regexp
	matched bool
}

// goldenPkg names one testdata directory and the import path to check
// it under.
type goldenPkg struct {
	dir, path string
}

func runGolden(t *testing.T, analyzers []*Analyzer, gps []goldenPkg, wantSuppressed int) {
	t.Helper()
	runGoldenWith(t, goldenLoader, analyzers, gps, wantSuppressed)
}

func runGoldenWith(t *testing.T, loader *Loader, analyzers []*Analyzer, gps []goldenPkg, wantSuppressed int) {
	t.Helper()
	var pkgs []*Package
	for _, gp := range gps {
		pkg, err := loader.LoadDirAs(gp.dir, gp.path)
		if err != nil {
			t.Fatal(err)
		}
		pkgs = append(pkgs, pkg)
	}
	findings, err := Run(pkgs, analyzers)
	if err != nil {
		t.Fatal(err)
	}
	if !FindingsSorted(findings) {
		t.Errorf("findings not in deterministic (file, line, col, analyzer) order: %v", findings)
	}

	// Collect wants from the comments of every file in every package.
	wants := map[string][]*want{} // file -> wants
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					m := wantRe.FindStringSubmatch(c.Text)
					if m == nil {
						continue
					}
					pos := pkg.Fset.Position(c.Pos())
					re, err := regexp.Compile(m[1])
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, m[1], err)
					}
					wants[pos.Filename] = append(wants[pos.Filename], &want{line: pos.Line, re: re})
				}
			}
		}
	}

	suppressed := 0
	for _, f := range findings {
		if f.Suppressed {
			suppressed++
			continue
		}
		ok := false
		for _, w := range wants[f.File] {
			if w.line == f.Line && !w.matched && w.re.MatchString(f.Message) {
				w.matched = true
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("unexpected finding: %s", f)
		}
	}
	for file, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				t.Errorf("%s:%d: expected finding matching %q, got none", file, w.line, w.re)
			}
		}
	}
	if suppressed != wantSuppressed {
		t.Errorf("suppressed findings = %d, want %d", suppressed, wantSuppressed)
	}
}

func TestWallclockGolden(t *testing.T) {
	// The package path places the testdata under internal/, where the
	// invariant applies; clean_test.go inside exercises the _test.go
	// allowlist and allow.go the suppression directive.
	runGolden(t, []*Analyzer{Wallclock}, []goldenPkg{{"testdata/wallclock/sim", "ofc/internal/simfake"}}, 1)
}

func TestWallclockAllowsCommands(t *testing.T) {
	// The same calls under a cmd/ path produce no findings at all.
	runGolden(t, []*Analyzer{Wallclock}, []goldenPkg{{"testdata/wallclock/cmdok", "ofc/cmd/fakecmd"}}, 0)
}

func TestSeededRandGolden(t *testing.T) {
	runGolden(t, []*Analyzer{SeededRand}, []goldenPkg{{"testdata/seededrand/a", "ofc/internal/randfake"}}, 1)
}

func TestSentErrGolden(t *testing.T) {
	runGolden(t, []*Analyzer{SentErr}, []goldenPkg{{"testdata/senterr/a", "ofc/internal/errfake"}}, 1)
}

func TestLockedRPCGolden(t *testing.T) {
	runGolden(t, []*Analyzer{LockedRPC}, []goldenPkg{{"testdata/lockedrpc/a", "ofc/internal/lockfake"}}, 1)
}

func TestMetricsNameGolden(t *testing.T) {
	runGolden(t, []*Analyzer{MetricsName}, []goldenPkg{{"testdata/metricsname/a", "ofc/internal/mfake"}}, 1)
}

func TestMapIterGolden(t *testing.T) {
	runGolden(t, []*Analyzer{MapIter}, []goldenPkg{{"testdata/mapiter/a", "ofc/internal/mapfake"}}, 1)
}

func TestLockOrderGolden(t *testing.T) {
	// Two packages: b imports a, and the cycle exists only in the
	// union of their facts — neither package alone contains it.
	runGolden(t, []*Analyzer{LockOrder}, []goldenPkg{
		{"testdata/lockorder/a", "ofc/lofake/a"},
		{"testdata/lockorder/b", "ofc/lofake/b"},
	}, 1)
}

func TestAtomicMixGolden(t *testing.T) {
	// a performs only sanctioned atomic accesses; b's plain accesses
	// are caught against a's exported fact.
	runGolden(t, []*Analyzer{AtomicMix}, []goldenPkg{
		{"testdata/atomicmix/a", "ofc/amfake/a"},
		{"testdata/atomicmix/b", "ofc/amfake/b"},
	}, 1)
}

func TestGoroLeakGolden(t *testing.T) {
	runGolden(t, []*Analyzer{GoroLeak}, []goldenPkg{{"testdata/goroleak/a", "ofc/glfake"}}, 1)
}

func TestGoroLeakExemptsSim(t *testing.T) {
	// The same raw-spawn shape under the scheduler's import path is
	// exempt. A private loader keeps the fake "ofc/internal/sim" out
	// of the shared loader's import overrides.
	runGoldenWith(t, NewLoader(), []*Analyzer{GoroLeak},
		[]goldenPkg{{"testdata/goroleak/sim", "ofc/internal/sim"}}, 0)
}

func TestUnusedAllowGolden(t *testing.T) {
	// Staleness is judged against the full suite: a directive is only
	// stale when its named analyzer ran and found nothing.
	runGolden(t, All(), []goldenPkg{{"testdata/unusedallow/a", "ofc/internal/uafake"}}, 2)
}

// TestDirectiveDiagnostics checks that broken //lint: comments are
// themselves findings: the gate cannot be silenced by a typo'd or
// reasonless suppression.
func TestDirectiveDiagnostics(t *testing.T) {
	pkg, err := goldenLoader.LoadDirAs("testdata/directive/a", "ofc/dirfake")
	if err != nil {
		t.Fatal(err)
	}
	findings, err := Run([]*Package{pkg}, All())
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, f := range Unsuppressed(findings) {
		if f.Analyzer != directiveAnalyzer {
			t.Errorf("non-directive finding in directive testdata: %s", f)
			continue
		}
		got = append(got, fmt.Sprintf("%d:%s", f.Line, firstWords(f.Message, 2)))
	}
	wantFindings := []string{"5:unknown lint", "12:malformed //lint:allow:", "15://lint:allow names"}
	if len(got) != len(wantFindings) {
		t.Fatalf("directive findings %v, want %v", got, wantFindings)
	}
	for i := range got {
		if got[i] != wantFindings[i] {
			t.Errorf("finding %d = %q, want %q", i, got[i], wantFindings[i])
		}
	}
}

func firstWords(s string, n int) string {
	out := ""
	for i, r := range s {
		if r == ' ' {
			n--
			if n == 0 {
				return out
			}
		}
		out = s[:i+1]
	}
	return out
}

// TestByName covers the driver's -run flag resolution.
func TestByName(t *testing.T) {
	all, err := ByName("")
	if err != nil || len(all) != 10 {
		t.Fatalf("ByName(\"\") = %d analyzers, err %v", len(all), err)
	}
	two, err := ByName("wallclock, senterr")
	if err != nil || len(two) != 2 || two[0].Name != "wallclock" || two[1].Name != "senterr" {
		t.Fatalf("ByName pair = %v, err %v", two, err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("unknown analyzer accepted")
	}
}
