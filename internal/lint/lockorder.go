package lint

import (
	"fmt"
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// LockOrder builds the program-wide lock graph and reports cycles as
// potential deadlocks. Locks are abstracted to classes — the struct
// type plus field that declares the sync.Mutex/RWMutex, or the package
// plus name for a package-level mutex — the same abstraction the
// kernel's lockdep uses. Each package's fact pass records, per
// function, the set of lock classes it (transitively) acquires and
// every held→acquired edge it witnesses, folding in the already-final
// facts of imported packages, so a `core` function that calls into
// `memctl` while holding core.CacheAgent.mu contributes core→memctl
// edges without lockorder ever seeing both packages at once. The
// program pass unions every edge, finds strongly connected components,
// and reports one finding per cycle with the full witness chain
// (file:line plus the function, and the callee the edge traveled
// through). A cycle means two executions can acquire the same classes
// in opposite orders — the interleaving-dependent deadlock that tests
// only catch by luck.
//
// The analysis is a conservative over-approximation: held sets are
// tracked linearly through each function (branch bodies are explored
// with a copy and do not leak state), deferred unlocks hold to
// function end, function literals passed to sim.Env.Go/After or `go`
// statements start unheld (they run on other processes), and other
// literal arguments are assumed to be invoked synchronously at the
// call site. Interface-method callees cannot be resolved statically
// and contribute no edges.
var LockOrder = &Analyzer{
	Name:       "lockorder",
	Doc:        "build the whole-program lock graph from per-package facts and report acquisition-order cycles with witness chains",
	Facts:      lockOrderFacts,
	FactType:   func() Fact { return new(LockFact) },
	RunProgram: runLockOrderProgram,
}

// LockFact is one package's exported lock facts.
type LockFact struct {
	// Funcs maps the qualified function name (pkg.Func or
	// pkg.Type.Method) to its lock behavior.
	Funcs map[string]*LockFuncFact `json:"funcs,omitempty"`
}

// LockFuncFact describes one function's lock behavior, final at
// export: transitive acquire sets already include everything reachable
// through same-package and imported callees.
type LockFuncFact struct {
	// Acquires lists every lock class the function may take,
	// directly or through any call, sorted.
	Acquires []string `json:"acquires,omitempty"`
	// Edges are the held→acquired pairs witnessed in this function.
	Edges []LockEdge `json:"edges,omitempty"`
}

// LockEdge is one witnessed ordering: To was acquired while From was
// held.
type LockEdge struct {
	From string `json:"from"`
	To   string `json:"to"`
	Site Site   `json:"site"`
	// Func is the qualified function containing the witness.
	Func string `json:"func"`
	// Via names the callee the acquisition traveled through, or "".
	Via string `json:"via,omitempty"`
}

// loCall records one call made by a function during the walk.
type loCall struct {
	callee  string
	samePkg bool
	held    []string
	site    Site
	// forAcquires is false for calls that run asynchronously (go
	// statements, async-spawned literals): their acquires must not
	// leak into the spawning function's transitive set.
	forAcquires bool
}

// loFunc accumulates one function's walk results before the fixpoint.
type loFunc struct {
	key    string
	direct map[string]Site
	edges  []LockEdge
	calls  []loCall
}

func lockOrderFacts(p *Pass) (Fact, error) {
	w := &loWalker{pass: p}
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := p.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			w.fn = &loFunc{key: funcKey(fn), direct: map[string]Site{}}
			w.stmts(fd.Body.List, nil)
			w.funcs = append(w.funcs, w.fn)
		}
	}

	// Transitive-acquire fixpoint. Imported packages' facts are final;
	// same-package calls iterate until stable.
	byKey := map[string]*loFunc{}
	for _, fn := range w.funcs {
		byKey[fn.key] = fn
	}
	acquires := map[string]map[string]bool{}
	for _, fn := range w.funcs {
		set := map[string]bool{}
		for c := range fn.direct {
			set[c] = true
		}
		acquires[fn.key] = set
	}
	calleeAcquires := func(c loCall) []string {
		if c.samePkg {
			if set, ok := acquires[c.callee]; ok {
				return sortedKeys(set)
			}
			return nil
		}
		return w.importedAcquires(p, c.callee)
	}
	for changed := true; changed; {
		changed = false
		for _, fn := range w.funcs {
			set := acquires[fn.key]
			for _, c := range fn.calls {
				if !c.forAcquires {
					continue
				}
				for _, cls := range calleeAcquires(c) {
					if !set[cls] {
						set[cls] = true
						changed = true
					}
				}
			}
		}
	}

	// Edge expansion: a call made while holding H reaches every lock
	// its callee may take.
	for _, fn := range w.funcs {
		for _, c := range fn.calls {
			if len(c.held) == 0 {
				continue
			}
			for _, to := range calleeAcquires(c) {
				for _, from := range c.held {
					fn.edges = append(fn.edges, LockEdge{
						From: from, To: to, Site: c.site, Func: fn.key, Via: c.callee,
					})
				}
			}
		}
	}

	fact := &LockFact{Funcs: map[string]*LockFuncFact{}}
	for _, fn := range w.funcs {
		if len(acquires[fn.key]) == 0 && len(fn.edges) == 0 {
			continue
		}
		sortEdges(fn.edges)
		fact.Funcs[fn.key] = &LockFuncFact{
			Acquires: sortedKeys(acquires[fn.key]),
			Edges:    dedupeEdges(fn.edges),
		}
	}
	if len(fact.Funcs) == 0 {
		return nil, nil
	}
	return fact, nil
}

// importedAcquires resolves a cross-package callee's transitive
// acquire set through the fact store.
func (w *loWalker) importedAcquires(p *Pass, callee string) []string {
	i := strings.LastIndex(callee, ".")
	if i < 0 {
		return nil
	}
	// Method keys are pkg.Type.Method; try stripping one then two
	// segments to find the owning package path.
	for path := callee[:i]; ; {
		if fact, ok := p.Fact(path).(*LockFact); ok && fact != nil {
			if ff := fact.Funcs[callee]; ff != nil {
				return ff.Acquires
			}
			return nil
		}
		j := strings.LastIndex(path, ".")
		if j < 0 {
			return nil
		}
		path = path[:j]
	}
}

type loWalker struct {
	pass  *Pass
	fn    *loFunc
	funcs []*loFunc
	// async marks regions whose calls must not propagate acquires to
	// the enclosing function (goroutine bodies, stored literals).
	async bool
}

// stmts walks a statement list, threading the held lock stack.
func (w *loWalker) stmts(list []ast.Stmt, held []string) []string {
	for _, s := range list {
		held = w.stmt(s, held)
	}
	return held
}

func (w *loWalker) stmt(s ast.Stmt, held []string) []string {
	switch s := s.(type) {
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			switch op, class := w.lockOp(call); op {
			case lockAcquire:
				if class != "" {
					site := w.pass.Site(call.Pos())
					for _, h := range held {
						w.fn.edges = append(w.fn.edges, LockEdge{From: h, To: class, Site: site, Func: w.fn.key})
					}
					if _, ok := w.fn.direct[class]; !ok {
						w.fn.direct[class] = site
					}
					return append(cloneHeld(held), class)
				}
				return held
			case lockRelease:
				return removeHeld(held, class)
			}
		}
		w.expr(s.X, held)
	case *ast.DeferStmt:
		if op, _ := w.lockOp(s.Call); op == lockRelease {
			return held // deferred unlock: held to function end
		}
		if op, _ := w.lockOp(s.Call); op == lockAcquire {
			return held // deferred lock: pathological, ignore
		}
		// A deferred call runs at return with an unknown held set;
		// record it unheld but let its acquires propagate (a caller
		// holding X across this function still reaches them).
		w.call(s.Call, nil)
		for _, a := range s.Call.Args {
			w.expr(a, nil)
		}
	case *ast.GoStmt:
		// The goroutine runs on its own stack, unheld; its acquires do
		// not become the spawner's.
		prev := w.async
		w.async = true
		if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
			w.stmts(lit.Body.List, nil)
		} else {
			w.call(s.Call, nil)
		}
		for _, a := range s.Call.Args {
			w.expr(a, nil)
		}
		w.async = prev
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			w.expr(e, held)
		}
		for _, e := range s.Lhs {
			w.expr(e, held)
		}
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			w.expr(e, held)
		}
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						w.expr(v, held)
					}
				}
			}
		}
	case *ast.IfStmt:
		if s.Init != nil {
			held = w.stmt(s.Init, held)
		}
		w.expr(s.Cond, held)
		w.stmts(s.Body.List, cloneHeld(held))
		if s.Else != nil {
			w.stmt(s.Else, cloneHeld(held))
		}
	case *ast.BlockStmt:
		return w.stmts(s.List, held)
	case *ast.ForStmt:
		if s.Init != nil {
			held = w.stmt(s.Init, held)
		}
		if s.Cond != nil {
			w.expr(s.Cond, held)
		}
		w.stmts(s.Body.List, cloneHeld(held))
		if s.Post != nil {
			w.stmt(s.Post, cloneHeld(held))
		}
	case *ast.RangeStmt:
		w.expr(s.X, held)
		w.stmts(s.Body.List, cloneHeld(held))
	case *ast.SwitchStmt:
		if s.Init != nil {
			held = w.stmt(s.Init, held)
		}
		if s.Tag != nil {
			w.expr(s.Tag, held)
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.stmts(cc.Body, cloneHeld(held))
			}
		}
	case *ast.TypeSwitchStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.stmts(cc.Body, cloneHeld(held))
			}
		}
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				w.stmts(cc.Body, cloneHeld(held))
			}
		}
	case *ast.LabeledStmt:
		return w.stmt(s.Stmt, held)
	case *ast.IncDecStmt:
		w.expr(s.X, held)
	case *ast.SendStmt:
		w.expr(s.Chan, held)
		w.expr(s.Value, held)
	}
	return held
}

// expr scans an expression for calls and function literals at the
// current held set.
func (w *loWalker) expr(e ast.Expr, held []string) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			// A bare literal (assigned, returned, stored) runs later in
			// an unknown context: walk unheld and async.
			prev := w.async
			w.async = true
			w.stmts(n.Body.List, nil)
			w.async = prev
			return false
		case *ast.CallExpr:
			if lit, ok := n.Fun.(*ast.FuncLit); ok {
				// IIFE: executes right here, under the current held set.
				w.stmts(lit.Body.List, cloneHeld(held))
				for _, a := range n.Args {
					w.expr(a, held)
				}
				return false
			}
			w.call(n, held)
			// Literal arguments: async spawn APIs run them unheld on
			// another process; anything else is assumed to invoke them
			// synchronously under the current held set.
			litHeld := held
			litAsync := false
			if w.isAsyncSpawner(n) {
				litHeld = nil
				litAsync = true
			}
			for _, a := range n.Args {
				if lit, ok := a.(*ast.FuncLit); ok {
					prev := w.async
					w.async = w.async || litAsync
					w.stmts(lit.Body.List, cloneHeld(litHeld))
					w.async = prev
				} else {
					w.expr(a, held)
				}
			}
			return false
		}
		return true
	})
}

// call records one resolved call at the current held set.
func (w *loWalker) call(call *ast.CallExpr, held []string) {
	fn := calleeFunc(w.pass, call)
	if fn == nil {
		return
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		if types.IsInterface(sig.Recv().Type().Underlying()) {
			return // dynamic dispatch: unresolvable statically
		}
	}
	if fn.Pkg() == nil {
		return
	}
	w.fn.calls = append(w.fn.calls, loCall{
		callee:      funcKey(fn),
		samePkg:     fn.Pkg().Path() == w.pass.Path(),
		held:        cloneHeld(held),
		site:        w.pass.Site(call.Pos()),
		forAcquires: !w.async,
	})
}

// isAsyncSpawner reports whether the call hands its literal arguments
// to another process: sim.Env.Go / sim.Env.After.
func (w *loWalker) isAsyncSpawner(call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := w.pass.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	if !strings.HasSuffix(fn.Pkg().Path(), "internal/sim") {
		return false
	}
	return fn.Name() == "Go" || fn.Name() == "After"
}

// lockOp classifies a statement-position call as a mutex acquire or
// release and resolves its lock class.
func (w *loWalker) lockOp(call *ast.CallExpr) (lockOpKind, string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return lockNone, ""
	}
	fn, ok := w.pass.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return lockNone, ""
	}
	var op lockOpKind
	switch fn.Name() {
	case "Lock", "RLock":
		op = lockAcquire
	case "Unlock", "RUnlock":
		op = lockRelease
	default:
		return lockNone, ""
	}
	return op, lockClass(w.pass, sel)
}

// lockClass names the lock abstraction behind a sync.Mutex method
// selector: the declaring struct type plus field path, or package plus
// name for a package-level mutex. Local mutexes return "" (their
// identity cannot cross functions).
func lockClass(p *Pass, sel *ast.SelectorExpr) string {
	if s, ok := p.Info.Selections[sel]; ok && len(s.Index()) > 1 {
		// Embedded mutex: s.Lock() — the receiver's type embeds
		// sync.Mutex; the class is receiver type + embedded field path.
		owner := typeName(s.Recv())
		path := fieldPath(s.Recv(), s.Index()[:len(s.Index())-1])
		if owner == "" || path == "" {
			return ""
		}
		return owner + "." + path
	}
	return fieldClass(p, sel.X)
}

// fieldClass names the struct field or package-level variable an
// expression denotes: "pkg.Type.field" or "pkg.var", or "".
func fieldClass(p *Pass, e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.SelectorExpr:
		if s, ok := p.Info.Selections[e]; ok && s.Kind() == types.FieldVal {
			owner := typeName(s.Recv())
			path := fieldPath(s.Recv(), s.Index())
			if owner == "" || path == "" {
				return ""
			}
			return owner + "." + path
		}
		if v, ok := p.Info.Uses[e.Sel].(*types.Var); ok && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			return v.Pkg().Path() + "." + v.Name()
		}
	case *ast.Ident:
		if v, ok := p.Info.Uses[e].(*types.Var); ok && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			return v.Pkg().Path() + "." + v.Name()
		}
	case *ast.StarExpr:
		return fieldClass(p, e.X)
	case *ast.UnaryExpr:
		return fieldClass(p, e.X)
	}
	return ""
}

// fieldPath renders a selection index path as dotted field names.
func fieldPath(recv types.Type, index []int) string {
	t := recv
	var names []string
	for _, idx := range index {
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
		}
		st, ok := t.Underlying().(*types.Struct)
		if !ok || idx >= st.NumFields() {
			return ""
		}
		f := st.Field(idx)
		names = append(names, f.Name())
		t = f.Type()
	}
	return strings.Join(names, ".")
}

// calleeFunc resolves a call's static callee, handling selectors,
// plain identifiers, and generic instantiations.
func calleeFunc(p *Pass, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		id = fun.Sel
	case *ast.Ident:
		id = fun
	case *ast.IndexExpr:
		if sel, ok := fun.X.(*ast.SelectorExpr); ok {
			id = sel.Sel
		} else if ident, ok := fun.X.(*ast.Ident); ok {
			id = ident
		}
	case *ast.IndexListExpr:
		if sel, ok := fun.X.(*ast.SelectorExpr); ok {
			id = sel.Sel
		} else if ident, ok := fun.X.(*ast.Ident); ok {
			id = ident
		}
	}
	if id == nil {
		return nil
	}
	fn, _ := p.Info.Uses[id].(*types.Func)
	return fn
}

// --- program pass: graph union + cycle reporting ---

func runLockOrderProgram(pp *ProgramPass) error {
	// Union every edge; keep one deterministic witness per (from, to).
	witness := map[[2]string]LockEdge{}
	for _, path := range pp.Facts.Packages(pp.Analyzer.Name) {
		fact := pp.Fact(path).(*LockFact)
		for _, key := range sortedFactKeys(fact.Funcs) {
			for _, e := range fact.Funcs[key].Edges {
				k := [2]string{e.From, e.To}
				if old, ok := witness[k]; !ok || edgeLess(e, old) {
					witness[k] = e
				}
			}
		}
	}
	adj := map[string][]string{}
	var nodes []string
	seen := map[string]bool{}
	for k := range witness {
		for _, n := range []string{k[0], k[1]} {
			if !seen[n] {
				seen[n] = true
				nodes = append(nodes, n)
			}
		}
		adj[k[0]] = append(adj[k[0]], k[1])
	}
	sort.Strings(nodes)
	for _, n := range nodes {
		sort.Strings(adj[n])
	}

	// Self-edges first: re-acquiring a held class deadlocks outright.
	for _, n := range nodes {
		if e, ok := witness[[2]string{n, n}]; ok {
			pp.ReportSite(e.Site, "lock class %s is re-acquired while already held%s (in %s): a second Lock on the same sync.Mutex class self-deadlocks; release first or split the lock class",
				shortClass(n), viaSuffix(e), shortFunc(e.Func))
		}
	}

	// Strongly connected components over the remaining graph; any SCC
	// with ≥2 nodes contains an acquisition-order cycle.
	for _, scc := range tarjanSCC(nodes, adj) {
		if len(scc) < 2 {
			continue
		}
		cycle := shortestCycle(scc, adj)
		if len(cycle) == 0 {
			continue
		}
		var chain []string
		for i := 0; i < len(cycle); i++ {
			from, to := cycle[i], cycle[(i+1)%len(cycle)]
			e := witness[[2]string{from, to}]
			chain = append(chain, fmt.Sprintf("%s → %s at %s (in %s%s)",
				shortClass(from), shortClass(to), e.Site, shortFunc(e.Func), viaSuffix(e)))
		}
		first := witness[[2]string{cycle[0], cycle[1%len(cycle)]}]
		pp.ReportSite(first.Site, "lock-order cycle (%d classes): %s; two executions can interleave these acquisitions into a deadlock — pick one global order",
			len(cycle), strings.Join(chain, "; "))
	}
	return nil
}

// shortestCycle finds the minimal cycle through the lexicographically
// smallest node of an SCC via BFS, deterministically.
func shortestCycle(scc []string, adj map[string][]string) []string {
	in := map[string]bool{}
	for _, n := range scc {
		in[n] = true
	}
	start := scc[0]
	for _, n := range scc[1:] {
		if n < start {
			start = n
		}
	}
	parent := map[string]string{}
	queue := []string{start}
	visited := map[string]bool{start: true}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range adj[u] {
			if !in[v] {
				continue
			}
			if v == start {
				// Reconstruct start → ... → u → start.
				var rev []string
				for x := u; ; x = parent[x] {
					rev = append(rev, x)
					if x == start {
						break
					}
				}
				out := make([]string, 0, len(rev))
				for i := len(rev) - 1; i >= 0; i-- {
					out = append(out, rev[i])
				}
				return out
			}
			if !visited[v] {
				visited[v] = true
				parent[v] = u
				queue = append(queue, v)
			}
		}
	}
	return nil
}

// tarjanSCC returns strongly connected components, each sorted, in
// deterministic (smallest-member) order.
func tarjanSCC(nodes []string, adj map[string][]string) [][]string {
	index := map[string]int{}
	low := map[string]int{}
	onStack := map[string]bool{}
	var stack []string
	var sccs [][]string
	next := 0

	var strongconnect func(v string)
	strongconnect = func(v string) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range adj[v] {
			if _, ok := index[w]; !ok {
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var scc []string
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				scc = append(scc, w)
				if w == v {
					break
				}
			}
			sort.Strings(scc)
			sccs = append(sccs, scc)
		}
	}
	for _, n := range nodes {
		if _, ok := index[n]; !ok {
			strongconnect(n)
		}
	}
	sort.Slice(sccs, func(i, j int) bool { return sccs[i][0] < sccs[j][0] })
	return sccs
}

// shortClass trims the module path prefix for readable messages:
// "ofc/internal/core.CacheAgent.mu" → "core.CacheAgent.mu".
func shortClass(class string) string {
	i := strings.LastIndex(class, "/")
	if i < 0 {
		return class
	}
	return class[i+1:]
}

func shortFunc(fn string) string { return shortClass(fn) }

func viaSuffix(e LockEdge) string {
	if e.Via == "" {
		return ""
	}
	return " via " + shortFunc(e.Via)
}

func edgeLess(a, b LockEdge) bool {
	if a.Site != b.Site {
		return a.Site.less(b.Site)
	}
	if a.Func != b.Func {
		return a.Func < b.Func
	}
	return a.Via < b.Via
}

func sortEdges(edges []LockEdge) {
	sort.Slice(edges, func(i, j int) bool {
		a, b := edges[i], edges[j]
		if a.From != b.From {
			return a.From < b.From
		}
		if a.To != b.To {
			return a.To < b.To
		}
		return edgeLess(a, b)
	})
}

func dedupeEdges(edges []LockEdge) []LockEdge {
	out := edges[:0]
	for i, e := range edges {
		if i > 0 && e == out[len(out)-1] {
			continue
		}
		out = append(out, e)
	}
	return out
}

func sortedKeys(set map[string]bool) []string {
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func sortedFactKeys(m map[string]*LockFuncFact) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// cloneHeld copies the held stack so branch bodies cannot mutate the
// fall-through state.
func cloneHeld(held []string) []string {
	if len(held) == 0 {
		return nil
	}
	return append([]string{}, held...)
}

// removeHeld drops the most recent occurrence of class. Unlocks of
// untracked (local) or not-currently-held classes pop nothing: a local
// mutex was never pushed, and a helper-style unlock of someone else's
// lock must not release a tracked class.
func removeHeld(held []string, class string) []string {
	if len(held) == 0 || class == "" {
		return held
	}
	out := cloneHeld(held)
	for i := len(out) - 1; i >= 0; i-- {
		if out[i] == class {
			return append(out[:i], out[i+1:]...)
		}
	}
	return out
}
