package lint

import (
	"encoding/json"
	"fmt"
	"sort"
)

// The fact system turns the per-package walker into a whole-program
// analyzer while staying stdlib-only. It mirrors go/analysis Facts in
// shape: when an analyzer declares a Facts hook, its per-package run
// exports one serializable fact object (lock-acquisition sets per
// function, atomic-vs-plain access sets per field, goroutine-spawn
// escape info), and every downstream package — packages are analyzed
// in import order — imports the already-final facts of its
// dependencies through Pass.Fact. After the last package, analyzers
// with a RunProgram hook see the full fact store at once and report
// global findings (the cross-package lock graph, program-wide
// atomic/plain mixes).
//
// Facts round-trip through JSON on every export: the store keeps only
// what survived encode→decode, so a fact type that silently drops
// state (unexported fields, unsupported types) is caught by the first
// analyzer run, not by a future incremental mode.

// Fact is one analyzer's per-package datum. Concrete fact types must
// round-trip through encoding/json; the analyzer's FactType hook
// returns a pointer to a zero value for decoding.
type Fact any

// Site is a position inside a fact. Facts outlive the token.FileSet
// they were computed under, so positions are stored resolved.
type Site struct {
	File string `json:"file"`
	Line int    `json:"line"`
	Col  int    `json:"col"`
}

func (s Site) String() string { return fmt.Sprintf("%s:%d", s.File, s.Line) }

// less orders sites by (file, line, col) for deterministic output.
func (s Site) less(t Site) bool {
	if s.File != t.File {
		return s.File < t.File
	}
	if s.Line != t.Line {
		return s.Line < t.Line
	}
	return s.Col < t.Col
}

type factKey struct {
	analyzer string
	pkg      string
}

// FactStore holds every exported fact of one Run, keyed by
// (analyzer, package path).
type FactStore struct {
	facts map[factKey]Fact
}

// NewFactStore returns an empty store.
func NewFactStore() *FactStore {
	return &FactStore{facts: map[factKey]Fact{}}
}

// export records a fact after forcing it through its serialized form.
// The returned fact is the decoded copy — the live pipeline consumes
// exactly what an on-disk fact file would contain.
func (s *FactStore) export(a *Analyzer, pkg string, f Fact) (Fact, error) {
	if f == nil {
		return nil, nil
	}
	if a.FactType == nil {
		return nil, fmt.Errorf("lint: analyzer %s exports facts but has no FactType", a.Name)
	}
	data, err := json.Marshal(f)
	if err != nil {
		return nil, fmt.Errorf("lint: %s fact for %s does not serialize: %v", a.Name, pkg, err)
	}
	decoded := a.FactType()
	if err := json.Unmarshal(data, decoded); err != nil {
		return nil, fmt.Errorf("lint: %s fact for %s does not round-trip: %v", a.Name, pkg, err)
	}
	s.facts[factKey{a.Name, pkg}] = decoded
	return decoded, nil
}

// Fact returns the fact analyzer exported for pkg, or nil.
func (s *FactStore) Fact(analyzer, pkg string) Fact {
	return s.facts[factKey{analyzer, pkg}]
}

// Packages lists every package path that has a fact from analyzer,
// sorted for deterministic iteration.
func (s *FactStore) Packages(analyzer string) []string {
	var out []string
	for k := range s.facts {
		if k.analyzer == analyzer {
			out = append(out, k.pkg)
		}
	}
	sort.Strings(out)
	return out
}

// EncodePackage serializes every fact exported for one package as a
// JSON object keyed by analyzer name — the wire format an incremental
// driver would cache per package.
func (s *FactStore) EncodePackage(pkg string) ([]byte, error) {
	obj := map[string]Fact{}
	for k, f := range s.facts {
		if k.pkg == pkg {
			obj[k.analyzer] = f
		}
	}
	return json.Marshal(obj)
}

// DecodePackage loads facts for one package from EncodePackage output,
// resolving fact types through the given analyzers.
func (s *FactStore) DecodePackage(pkg string, data []byte, analyzers []*Analyzer) error {
	var raw map[string]json.RawMessage
	if err := json.Unmarshal(data, &raw); err != nil {
		return fmt.Errorf("lint: decoding facts for %s: %v", pkg, err)
	}
	byName := map[string]*Analyzer{}
	for _, a := range analyzers {
		byName[a.Name] = a
	}
	for name, msg := range raw {
		a, ok := byName[name]
		if !ok || a.FactType == nil {
			return fmt.Errorf("lint: facts for %s name unknown analyzer %q", pkg, name)
		}
		f := a.FactType()
		if err := json.Unmarshal(msg, f); err != nil {
			return fmt.Errorf("lint: decoding %s fact for %s: %v", name, pkg, err)
		}
		s.facts[factKey{name, pkg}] = f
	}
	return nil
}

// topoSort orders packages so every package follows the packages it
// imports (restricted to the loaded set). Ties break lexicographically
// by import path, keeping fact-pass order — and therefore finding
// order — identical across runs. Import cycles cannot occur in
// compiled Go; if one sneaks in through a malformed load, the residue
// is appended in path order rather than dropped.
func topoSort(pkgs []*Package) []*Package {
	byPath := map[string]*Package{}
	for _, p := range pkgs {
		byPath[p.Path] = p
	}
	indeg := map[string]int{}
	dependents := map[string][]string{}
	for _, p := range pkgs {
		if _, ok := indeg[p.Path]; !ok {
			indeg[p.Path] = 0
		}
		for _, imp := range p.Types.Imports() {
			if _, loaded := byPath[imp.Path()]; loaded && imp.Path() != p.Path {
				indeg[p.Path]++
				dependents[imp.Path()] = append(dependents[imp.Path()], p.Path)
			}
		}
	}
	var ready []string
	for path, d := range indeg {
		if d == 0 {
			ready = append(ready, path)
		}
	}
	sort.Strings(ready)
	var out []*Package
	done := map[string]bool{}
	for len(ready) > 0 {
		path := ready[0]
		ready = ready[1:]
		done[path] = true
		out = append(out, byPath[path])
		next := append([]string{}, dependents[path]...)
		sort.Strings(next)
		for _, dep := range next {
			indeg[dep]--
			if indeg[dep] == 0 {
				ready = append(ready, dep)
			}
		}
		sort.Strings(ready)
	}
	if len(out) < len(pkgs) {
		var rest []string
		for _, p := range pkgs {
			if !done[p.Path] {
				rest = append(rest, p.Path)
			}
		}
		sort.Strings(rest)
		for _, path := range rest {
			out = append(out, byPath[path])
		}
	}
	return out
}

// ProgramPass carries the whole program — every loaded package in
// import order plus the full fact store — through one analyzer's
// RunProgram hook.
type ProgramPass struct {
	Analyzer *Analyzer
	// Pkgs is every analyzed package in topological (import) order.
	Pkgs  []*Package
	Facts *FactStore

	report func(Finding)
}

// Fact returns this analyzer's fact for pkg, or nil.
func (pp *ProgramPass) Fact(pkg string) Fact {
	return pp.Facts.Fact(pp.Analyzer.Name, pkg)
}

// Report records a whole-program finding. The caller fills position
// fields from fact sites; Analyzer is stamped here.
func (pp *ProgramPass) Report(f Finding) {
	f.Analyzer = pp.Analyzer.Name
	pp.report(f)
}

// ReportSite records a finding anchored at a fact site.
func (pp *ProgramPass) ReportSite(site Site, format string, args ...interface{}) {
	pp.Report(Finding{
		File:    site.File,
		Line:    site.Line,
		Col:     site.Col,
		Message: fmt.Sprintf(format, args...),
	})
}
