package lint

import (
	"os"
	"os/exec"
	"strings"
	"testing"
)

// TestRepoIsClean runs the full analyzer suite over the repository
// itself and requires zero unsuppressed findings — the same gate
// `make lint` enforces. If this test fails, either fix the flagged
// code or add a `//lint:allow <analyzer> <reason>` with a real
// justification.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: repo-wide type-check is a few seconds")
	}
	out, err := exec.Command("go", "env", "GOMOD").Output()
	if err != nil {
		t.Fatalf("go env GOMOD: %v", err)
	}
	gomod := strings.TrimSpace(string(out))
	if gomod == "" || gomod == os.DevNull {
		t.Fatal("not in a module")
	}
	root := gomod[:strings.LastIndex(gomod, string(os.PathSeparator))]

	pkgs, err := NewLoader().LoadPatterns(root, "./...")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 15 {
		t.Fatalf("only %d packages loaded from %s; pattern broken?", len(pkgs), root)
	}
	findings, err := Run(pkgs, All())
	if err != nil {
		t.Fatal(err)
	}
	if !FindingsSorted(findings) {
		t.Error("repo-wide findings are not in the deterministic (file, line, col, analyzer) order")
	}
	for _, f := range Unsuppressed(findings) {
		t.Errorf("%s", f)
	}
	// Suppressions must stay rare and justified; if this count grows,
	// review whether the invariant or the code should change.
	if n := len(findings) - len(Unsuppressed(findings)); n > 8 {
		t.Errorf("%d suppressed findings repo-wide; expected a handful", n)
	}
}
