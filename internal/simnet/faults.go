package simnet

import (
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// ErrUnreachable is returned by the fallible transfer path when the
// destination (or the link to it) is down. The sender pays the failure
// detection delay before seeing it, as a real RPC layer pays a timeout.
var ErrUnreachable = errors.New("simnet: destination unreachable")

// linkKey identifies an undirected link; a <= b always.
type linkKey struct{ a, b NodeID }

func mkLink(a, b NodeID) linkKey {
	if a > b {
		a, b = b, a
	}
	return linkKey{a, b}
}

// linkState is the fault status of one link. Zero factors mean
// "healthy" (factor 1, no loss).
type linkState struct {
	partitioned bool
	latFactor   float64 // propagation latency multiplier
	bwFactor    float64 // bandwidth multiplier (0 < f <= 1 degrades)
	lossProb    float64 // per-transfer packet-loss probability
}

// faults holds the mutable failure state of the fabric. It lives on
// its own lock, and the `any` hint is atomic: fault-free runs (the
// vast majority of transfers even in chaos drills) check one atomic
// load on the hot path and never touch the mutex.
type faults struct {
	mu       sync.Mutex
	any      atomic.Bool // fast-path hint: at least one fault ever injected
	nodeDown map[NodeID]bool
	links    map[linkKey]*linkState
	diskSlow map[NodeID]float64
	rng      *rand.Rand
}

func newFaults() *faults {
	return &faults{
		nodeDown: make(map[NodeID]bool),
		links:    make(map[linkKey]*linkState),
		diskSlow: make(map[NodeID]float64),
		rng:      rand.New(rand.NewSource(0)),
	}
}

// faultState returns the fabric's failure state, allocated eagerly at
// Network construction so lookups need no lock.
func (n *Network) faultState() *faults {
	return n.flt
}

// SeedFaults seeds the generator behind probabilistic faults (packet
// loss). Chaos schedules call it so loss draws are reproducible.
func (n *Network) SeedFaults(seed int64) {
	f := n.faultState()
	f.mu.Lock()
	f.rng = rand.New(rand.NewSource(seed))
	f.mu.Unlock()
}

// SetNodeDown fail-stops (or revives) a machine: transfers from or to
// it fail with ErrUnreachable.
func (n *Network) SetNodeDown(id NodeID, down bool) {
	f := n.faultState()
	f.mu.Lock()
	f.nodeDown[id] = down
	f.any.Store(true)
	f.mu.Unlock()
}

// NodeDown reports whether the machine is fail-stopped.
func (n *Network) NodeDown(id NodeID) bool {
	f := n.flt
	if !f.any.Load() {
		return false
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.nodeDown[id]
}

func (f *faults) link(a, b NodeID) *linkState {
	k := mkLink(a, b)
	l := f.links[k]
	if l == nil {
		l = &linkState{}
		f.links[k] = l
	}
	return l
}

// Partition cuts the link between a and b (both directions).
func (n *Network) Partition(a, b NodeID) {
	f := n.faultState()
	f.mu.Lock()
	f.link(a, b).partitioned = true
	f.any.Store(true)
	f.mu.Unlock()
}

// Heal restores the link between a and b (partition only; degradation
// set via DegradeLink is cleared with ResetLink).
func (n *Network) Heal(a, b NodeID) {
	f := n.faultState()
	f.mu.Lock()
	f.link(a, b).partitioned = false
	f.mu.Unlock()
}

// DegradeLink multiplies the link's propagation latency by latFactor
// and its usable bandwidth by bwFactor (0 < bwFactor <= 1). Factors
// <= 0 are treated as 1 (no change).
func (n *Network) DegradeLink(a, b NodeID, latFactor, bwFactor float64) {
	f := n.faultState()
	f.mu.Lock()
	l := f.link(a, b)
	l.latFactor = latFactor
	l.bwFactor = bwFactor
	f.any.Store(true)
	f.mu.Unlock()
}

// SetPacketLoss sets the per-transfer loss probability on the link;
// each lost packet costs one retransmission round trip plus the resend
// serialization.
func (n *Network) SetPacketLoss(a, b NodeID, p float64) {
	f := n.faultState()
	f.mu.Lock()
	f.link(a, b).lossProb = p
	f.any.Store(true)
	f.mu.Unlock()
}

// ResetLink clears every fault (partition, degradation, loss) on the
// link.
func (n *Network) ResetLink(a, b NodeID) {
	f := n.faultState()
	f.mu.Lock()
	delete(f.links, mkLink(a, b))
	f.mu.Unlock()
}

// SetDiskFactor multiplies node's disk operation time by factor
// (factor <= 0 or == 1 restores full speed).
func (n *Network) SetDiskFactor(id NodeID, factor float64) {
	f := n.faultState()
	f.mu.Lock()
	if factor <= 0 || factor == 1 {
		delete(f.diskSlow, id)
	} else {
		f.diskSlow[id] = factor
		f.any.Store(true)
	}
	f.mu.Unlock()
}

// diskFactor returns node's current disk slowdown (>= 1).
func (n *Network) diskFactor(id NodeID) float64 {
	f := n.flt
	if !f.any.Load() {
		return 1
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if v, ok := f.diskSlow[id]; ok && v > 1 {
		return v
	}
	return 1
}

// linkFaults is the snapshot the transfer path consults: reachable,
// latency/bandwidth multipliers and the number of retransmissions this
// transfer suffers (drawn once, deterministically given the fault RNG
// stream).
type linkFaults struct {
	reachable  bool
	latFactor  float64
	bwFactor   float64
	retransmit int
}

// lookFaults inspects the fault state for a transfer from -> to.
func (n *Network) lookFaults(from, to NodeID) linkFaults {
	out := linkFaults{reachable: true, latFactor: 1, bwFactor: 1}
	f := n.flt
	if !f.any.Load() {
		// Fault-free fabric: the common case costs one atomic load and
		// no lock, no map lookups.
		return out
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.nodeDown[from] || f.nodeDown[to] {
		out.reachable = false
		return out
	}
	l := f.links[mkLink(from, to)]
	if l == nil {
		return out
	}
	if l.partitioned {
		out.reachable = false
		return out
	}
	if l.latFactor > 0 {
		out.latFactor = l.latFactor
	}
	if l.bwFactor > 0 && l.bwFactor < 1 {
		out.bwFactor = l.bwFactor
	}
	if l.lossProb > 0 {
		// Geometric retransmission count, capped so a lossy link slows
		// transfers down rather than wedging them.
		for out.retransmit < 3 && f.rng.Float64() < l.lossProb {
			out.retransmit++
		}
	}
	return out
}

// failureDetectDelay is the time a sender spends discovering that the
// destination is gone (connection timeout / RPC deadline at the
// transport).
func (n *Network) failureDetectDelay() time.Duration {
	if n.cfg.FailureDetectDelay > 0 {
		return n.cfg.FailureDetectDelay
	}
	return 10 * n.cfg.LinkLatency
}
