package simnet

import (
	"testing"
	"testing/quick"
	"time"

	"ofc/internal/sim"
)

func testNet(env *sim.Env) (*Network, *Node, *Node) {
	n := New(env, DefaultConfig())
	a := n.AddNode("a")
	b := n.AddNode("b")
	return n, a, b
}

func TestTransferTiming(t *testing.T) {
	env := sim.NewEnv(1)
	n, a, b := testNet(env)
	var took time.Duration
	env.Go(func() {
		start := env.Now()
		n.Transfer(a.ID, b.ID, 1<<20) // 1 MiB
		took = env.Now() - start
	})
	env.Run()
	// 1 MiB at 1.25 GB/s ≈ 0.839 ms serialization, counted twice
	// (tx + rx), plus 25 µs propagation.
	tx := n.txTime(1 << 20)
	want := 2*tx + n.Config().LinkLatency
	if took != want {
		t.Errorf("transfer took %v, want %v", took, want)
	}
}

func TestLoopbackIsCheap(t *testing.T) {
	env := sim.NewEnv(1)
	n, a, _ := testNet(env)
	var took time.Duration
	env.Go(func() {
		start := env.Now()
		n.Transfer(a.ID, a.ID, 100<<20)
		took = env.Now() - start
	})
	env.Run()
	if took != n.Config().LoopbackLatency {
		t.Errorf("loopback took %v, want %v", took, n.Config().LoopbackLatency)
	}
}

func TestNICSerialization(t *testing.T) {
	env := sim.NewEnv(1)
	cfg := DefaultConfig()
	n := New(env, cfg)
	a := n.AddNode("a")
	b := n.AddNode("b")
	c := n.AddNode("c")
	size := int64(10 << 20)
	done := make([]time.Duration, 2)
	env.Go(func() {
		n.Transfer(a.ID, b.ID, size)
		done[0] = env.Now()
	})
	env.Go(func() {
		n.Transfer(a.ID, c.ID, size)
		done[1] = env.Now()
	})
	env.Run()
	tx := n.txTime(size)
	// Two transfers share a's transmit NIC: the second cannot finish
	// at the unserialized time.
	unserialized := 2*tx + cfg.LinkLatency
	later := done[0]
	if done[1] > later {
		later = done[1]
	}
	if later <= unserialized {
		t.Errorf("no NIC serialization: second finished at %v, unserialized bound %v", later, unserialized)
	}
}

func TestCallRoundTrip(t *testing.T) {
	env := sim.NewEnv(1)
	n, a, b := testNet(env)
	var took time.Duration
	var got int
	env.Go(func() {
		start := env.Now()
		got = Call(n, a.ID, b.ID, 100, 100, func() int {
			env.Sleep(time.Millisecond) // service time
			return 42
		})
		took = env.Now() - start
	})
	env.Run()
	if got != 42 {
		t.Fatalf("got %d", got)
	}
	oneWay := 2*n.txTime(100) + n.Config().LinkLatency
	want := 2*oneWay + time.Millisecond
	if took != want {
		t.Errorf("call took %v, want %v", took, want)
	}
}

func TestDiskTiming(t *testing.T) {
	env := sim.NewEnv(1)
	cfg := DefaultConfig()
	n := New(env, cfg)
	a := n.AddNode("a")
	var readTook, writeTook time.Duration
	env.Go(func() {
		start := env.Now()
		a.DiskRead(50 << 20)
		readTook = env.Now() - start
		start = env.Now()
		a.DiskWrite(45 << 20)
		writeTook = env.Now() - start
	})
	env.Run()
	wantRead := cfg.DiskReadLatency + time.Duration(float64(50<<20)/cfg.DiskReadBandwidth*float64(time.Second))
	if readTook != wantRead {
		t.Errorf("read took %v, want %v", readTook, wantRead)
	}
	wantWrite := cfg.DiskWriteLatency + time.Duration(float64(45<<20)/cfg.DiskWriteBandwidth*float64(time.Second))
	if writeTook != wantWrite {
		t.Errorf("write took %v, want %v", writeTook, wantWrite)
	}
}

func TestDiskSerialization(t *testing.T) {
	env := sim.NewEnv(1)
	n := New(env, DefaultConfig())
	a := n.AddNode("a")
	var end time.Duration
	wg := sim.NewWaitGroup(env)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		env.Go(func() {
			defer wg.Done()
			a.DiskWrite(0)
		})
	}
	env.Go(func() {
		wg.Wait()
		end = env.Now()
	})
	env.Run()
	want := 4 * DefaultConfig().DiskWriteLatency
	if end != want {
		t.Errorf("4 serialized writes ended at %v, want %v", end, want)
	}
}

func TestStatsAccumulate(t *testing.T) {
	env := sim.NewEnv(1)
	n, a, b := testNet(env)
	env.Go(func() {
		n.Transfer(a.ID, b.ID, 1000)
		n.Transfer(a.ID, b.ID, 500)
		a.DiskWrite(300)
		b.DiskRead(200)
	})
	env.Run()
	sent, _, _, dw := a.Stats()
	if sent != 1500 || dw != 300 {
		t.Errorf("a stats sent=%d dw=%d", sent, dw)
	}
	_, recv, dr, _ := b.Stats()
	if recv != 1500 || dr != 200 {
		t.Errorf("b stats recv=%d dr=%d", recv, dr)
	}
}

// Property: transfer duration is monotonic in size.
func TestPropertyTransferMonotonic(t *testing.T) {
	f := func(s1, s2 uint32) bool {
		a64, b64 := int64(s1), int64(s2)
		if a64 > b64 {
			a64, b64 = b64, a64
		}
		env := sim.NewEnv(1)
		n, a, b := testNet(env)
		var d1, d2 time.Duration
		env.Go(func() {
			start := env.Now()
			n.Transfer(a.ID, b.ID, a64)
			d1 = env.Now() - start
			start = env.Now()
			n.Transfer(a.ID, b.ID, b64)
			d2 = env.Now() - start
		})
		env.Run()
		return d1 <= d2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestUnknownNodePanics(t *testing.T) {
	env := sim.NewEnv(1)
	n := New(env, DefaultConfig())
	defer func() {
		if recover() == nil {
			t.Error("no panic for unknown node")
		}
	}()
	n.Node(3)
}
