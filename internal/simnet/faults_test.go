package simnet

import (
	"errors"
	"testing"
	"time"

	"ofc/internal/sim"
)

func TestPartitionBlocksTransferUntilHeal(t *testing.T) {
	env := sim.NewEnv(1)
	n, a, b := testNet(env)
	env.Go(func() {
		n.Partition(a.ID, b.ID)
		start := env.Now()
		if err := n.TryTransfer(a.ID, b.ID, 1<<10); !errors.Is(err, ErrUnreachable) {
			t.Errorf("err=%v, want ErrUnreachable", err)
		}
		// The sender pays the failure-detection delay, not zero time.
		if took := env.Now() - start; took != n.failureDetectDelay() {
			t.Errorf("detection took %v, want %v", took, n.failureDetectDelay())
		}
		// Symmetric: the reverse direction is cut too.
		if err := n.TryTransfer(b.ID, a.ID, 1<<10); !errors.Is(err, ErrUnreachable) {
			t.Errorf("reverse err=%v", err)
		}
		n.Heal(a.ID, b.ID)
		if err := n.TryTransfer(a.ID, b.ID, 1<<10); err != nil {
			t.Errorf("after heal: %v", err)
		}
	})
	env.Run()
}

func TestNodeDownUnreachableBothWays(t *testing.T) {
	env := sim.NewEnv(1)
	n, a, b := testNet(env)
	c := n.AddNode("c")
	env.Go(func() {
		n.SetNodeDown(b.ID, true)
		if !n.NodeDown(b.ID) {
			t.Error("NodeDown=false after SetNodeDown")
		}
		if err := n.TryTransfer(a.ID, b.ID, 1<<10); !errors.Is(err, ErrUnreachable) {
			t.Errorf("to dead node: %v", err)
		}
		if err := n.TryTransfer(b.ID, a.ID, 1<<10); !errors.Is(err, ErrUnreachable) {
			t.Errorf("from dead node: %v", err)
		}
		// Unrelated links keep working.
		if err := n.TryTransfer(a.ID, c.ID, 1<<10); err != nil {
			t.Errorf("bystander link: %v", err)
		}
		n.SetNodeDown(b.ID, false)
		if err := n.TryTransfer(a.ID, b.ID, 1<<10); err != nil {
			t.Errorf("after revive: %v", err)
		}
	})
	env.Run()
}

func TestDegradeLinkStretchesTransfer(t *testing.T) {
	env := sim.NewEnv(1)
	n, a, b := testNet(env)
	size := int64(1 << 20)
	var clean, degraded time.Duration
	env.Go(func() {
		start := env.Now()
		if err := n.TryTransfer(a.ID, b.ID, size); err != nil {
			t.Fatal(err)
		}
		clean = env.Now() - start
		n.DegradeLink(a.ID, b.ID, 4, 0.25)
		start = env.Now()
		if err := n.TryTransfer(a.ID, b.ID, size); err != nil {
			t.Fatal(err)
		}
		degraded = env.Now() - start
		// Exact model: serialization stretched by 1/bw, propagation by lat.
		tx := n.txTime(size)
		want := 2*time.Duration(float64(tx)/0.25) + 4*n.Config().LinkLatency
		if degraded != want {
			t.Errorf("degraded=%v, want %v", degraded, want)
		}
		n.ResetLink(a.ID, b.ID)
		start = env.Now()
		n.TryTransfer(a.ID, b.ID, size)
		if after := env.Now() - start; after != clean {
			t.Errorf("after reset %v, clean %v", after, clean)
		}
	})
	env.Run()
	if degraded <= clean {
		t.Errorf("degraded=%v not slower than clean=%v", degraded, clean)
	}
}

func TestPacketLossRetransmits(t *testing.T) {
	env := sim.NewEnv(1)
	n, a, b := testNet(env)
	n.SeedFaults(42)
	size := int64(256 << 10)
	var clean, lossy time.Duration
	env.Go(func() {
		start := env.Now()
		n.TryTransfer(a.ID, b.ID, size)
		clean = env.Now() - start
		n.SetPacketLoss(a.ID, b.ID, 0.9)
		// Several transfers: with p=0.9 at least one must draw a
		// retransmission and come out slower.
		var worst time.Duration
		for i := 0; i < 5; i++ {
			start = env.Now()
			if err := n.TryTransfer(a.ID, b.ID, size); err != nil {
				t.Fatal(err)
			}
			if d := env.Now() - start; d > worst {
				worst = d
			}
		}
		lossy = worst
	})
	env.Run()
	if lossy <= clean {
		t.Errorf("lossy worst=%v not slower than clean=%v", lossy, clean)
	}
}

func TestPacketLossDeterministicUnderSeed(t *testing.T) {
	runOnce := func() []time.Duration {
		env := sim.NewEnv(1)
		n, a, b := testNet(env)
		n.SeedFaults(7)
		var out []time.Duration
		env.Go(func() {
			n.SetPacketLoss(a.ID, b.ID, 0.5)
			for i := 0; i < 8; i++ {
				start := env.Now()
				n.TryTransfer(a.ID, b.ID, 64<<10)
				out = append(out, env.Now()-start)
			}
		})
		env.Run()
		return out
	}
	x, y := runOnce(), runOnce()
	for i := range x {
		if x[i] != y[i] {
			t.Fatalf("transfer %d: %v vs %v (same seed)", i, x[i], y[i])
		}
	}
}

func TestDiskFactorSlowsNodeDisk(t *testing.T) {
	env := sim.NewEnv(1)
	n, a, _ := testNet(env)
	size := int64(4 << 20)
	var clean, slow time.Duration
	env.Go(func() {
		start := env.Now()
		a.DiskRead(size)
		clean = env.Now() - start
		n.SetDiskFactor(a.ID, 8)
		start = env.Now()
		a.DiskRead(size)
		slow = env.Now() - start
		n.SetDiskFactor(a.ID, 1)
		start = env.Now()
		a.DiskRead(size)
		if restored := env.Now() - start; restored != clean {
			t.Errorf("restored=%v, clean=%v", restored, clean)
		}
	})
	env.Run()
	if slow < 7*clean || slow > 9*clean {
		t.Errorf("slow=%v, want ≈8× clean=%v", slow, clean)
	}
}

func TestTryCallUnreachable(t *testing.T) {
	env := sim.NewEnv(1)
	n, a, b := testNet(env)
	env.Go(func() {
		n.SetNodeDown(b.ID, true)
		_, err := TryCall(n, a.ID, b.ID, 128, 128, func() int { return 42 })
		if !errors.Is(err, ErrUnreachable) {
			t.Errorf("err=%v, want ErrUnreachable", err)
		}
		n.SetNodeDown(b.ID, false)
		v, err := TryCall(n, a.ID, b.ID, 128, 128, func() int { return 42 })
		if err != nil || v != 42 {
			t.Errorf("v=%d err=%v", v, err)
		}
	})
	env.Run()
}
