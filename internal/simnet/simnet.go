// Package simnet models the cluster fabric of the OFC testbed: a set
// of named nodes joined by a switched network with per-NIC
// serialization, plus a local disk per node.
//
// The paper's testbed is six machines on a 10 Gb/s Ethernet switch with
// one 480 GB SSD each. This package reproduces that topology as a
// latency/bandwidth model on the sim virtual clock: transfers cost
// transmit serialization on the sender NIC, propagation latency, and
// receive serialization on the receiver NIC; disk I/O costs a seek/op
// latency plus size over bandwidth, serialized per disk.
package simnet

import (
	"fmt"
	"sync"
	"time"

	"ofc/internal/sim"
)

// NodeID identifies a node in the network.
type NodeID int

// Config carries the fabric constants. The defaults (DefaultConfig)
// follow the paper's testbed.
type Config struct {
	// LinkLatency is the one-way propagation latency between two
	// distinct nodes (switch traversal included).
	LinkLatency time.Duration
	// LoopbackLatency is the one-way latency for a node talking to
	// itself (kernel loopback).
	LoopbackLatency time.Duration
	// Bandwidth is the NIC line rate in bytes per second.
	Bandwidth float64
	// DiskReadLatency and DiskWriteLatency are per-operation costs.
	DiskReadLatency  time.Duration
	DiskWriteLatency time.Duration
	// DiskReadBandwidth and DiskWriteBandwidth are in bytes per second.
	DiskReadBandwidth  float64
	DiskWriteBandwidth float64
}

// DefaultConfig models the paper's testbed: 10 GbE and a SATA SSD.
func DefaultConfig() Config {
	return Config{
		LinkLatency:        25 * time.Microsecond,
		LoopbackLatency:    5 * time.Microsecond,
		Bandwidth:          10e9 / 8, // 10 Gb/s
		DiskReadLatency:    80 * time.Microsecond,
		DiskWriteLatency:   50 * time.Microsecond,
		DiskReadBandwidth:  500e6,
		DiskWriteBandwidth: 450e6,
	}
}

// Network is the cluster fabric: nodes, NICs and disks.
type Network struct {
	env   *sim.Env
	cfg   Config
	mu    sync.Mutex
	nodes []*Node
}

// Node is one machine: a transmit NIC, a receive NIC and a disk, each a
// FIFO resource.
type Node struct {
	ID   NodeID
	Name string

	net  *Network
	tx   *sim.Semaphore
	rx   *sim.Semaphore
	disk *sim.Semaphore

	statsMu   sync.Mutex
	bytesSent int64
	bytesRecv int64
	diskRead  int64
	diskWrite int64
}

// New creates an empty network over env with the given constants.
func New(env *sim.Env, cfg Config) *Network {
	if cfg.Bandwidth <= 0 {
		panic("simnet: non-positive bandwidth")
	}
	return &Network{env: env, cfg: cfg}
}

// Env returns the simulation environment the network runs on.
func (n *Network) Env() *sim.Env { return n.env }

// Config returns the fabric constants.
func (n *Network) Config() Config { return n.cfg }

// AddNode registers a machine and returns it.
func (n *Network) AddNode(name string) *Node {
	n.mu.Lock()
	defer n.mu.Unlock()
	node := &Node{
		ID:   NodeID(len(n.nodes)),
		Name: name,
		net:  n,
		tx:   sim.NewSemaphore(n.env, 1),
		rx:   sim.NewSemaphore(n.env, 1),
		disk: sim.NewSemaphore(n.env, 1),
	}
	n.nodes = append(n.nodes, node)
	return node
}

// Node returns the node with the given id.
func (n *Network) Node(id NodeID) *Node {
	n.mu.Lock()
	defer n.mu.Unlock()
	if int(id) < 0 || int(id) >= len(n.nodes) {
		panic(fmt.Sprintf("simnet: unknown node %d", id))
	}
	return n.nodes[id]
}

// Nodes returns all registered nodes.
func (n *Network) Nodes() []*Node {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]*Node, len(n.nodes))
	copy(out, n.nodes)
	return out
}

// txTime is the serialization time of size bytes at line rate.
func (n *Network) txTime(size int64) time.Duration {
	if size <= 0 {
		return 0
	}
	return time.Duration(float64(size) / n.cfg.Bandwidth * float64(time.Second))
}

// Transfer moves size bytes from one node to another, blocking the
// calling process for the full transfer duration. Same-node transfers
// cost only the loopback latency.
func (n *Network) Transfer(from, to NodeID, size int64) {
	if from == to {
		n.env.Sleep(n.cfg.LoopbackLatency)
		return
	}
	src, dst := n.Node(from), n.Node(to)
	tx := n.txTime(size)

	src.tx.Acquire(1)
	n.env.Sleep(tx)
	src.tx.Release(1)

	n.env.Sleep(n.cfg.LinkLatency)

	dst.rx.Acquire(1)
	n.env.Sleep(tx)
	dst.rx.Release(1)

	src.statsMu.Lock()
	src.bytesSent += size
	src.statsMu.Unlock()
	dst.statsMu.Lock()
	dst.bytesRecv += size
	dst.statsMu.Unlock()
}

// Call performs a synchronous RPC: the request payload travels from
// caller to callee, serve runs (its virtual duration is whatever serve
// itself spends), and the response travels back. It returns serve's
// result.
func Call[T any](n *Network, from, to NodeID, reqSize, respSize int64, serve func() T) T {
	n.Transfer(from, to, reqSize)
	v := serve()
	n.Transfer(to, from, respSize)
	return v
}

// DiskRead charges a read of size bytes against the node's disk,
// blocking the calling process.
func (nd *Node) DiskRead(size int64) {
	cfg := nd.net.cfg
	nd.disk.Acquire(1)
	nd.net.env.Sleep(cfg.DiskReadLatency + time.Duration(float64(size)/cfg.DiskReadBandwidth*float64(time.Second)))
	nd.disk.Release(1)
	nd.statsMu.Lock()
	nd.diskRead += size
	nd.statsMu.Unlock()
}

// DiskWrite charges a write of size bytes against the node's disk,
// blocking the calling process.
func (nd *Node) DiskWrite(size int64) {
	cfg := nd.net.cfg
	nd.disk.Acquire(1)
	nd.net.env.Sleep(cfg.DiskWriteLatency + time.Duration(float64(size)/cfg.DiskWriteBandwidth*float64(time.Second)))
	nd.disk.Release(1)
	nd.statsMu.Lock()
	nd.diskWrite += size
	nd.statsMu.Unlock()
}

// Stats reports cumulative traffic counters for the node.
func (nd *Node) Stats() (bytesSent, bytesRecv, diskRead, diskWrite int64) {
	nd.statsMu.Lock()
	defer nd.statsMu.Unlock()
	return nd.bytesSent, nd.bytesRecv, nd.diskRead, nd.diskWrite
}
