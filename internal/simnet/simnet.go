// Package simnet models the cluster fabric of the OFC testbed: a set
// of named nodes joined by a switched network with per-NIC
// serialization, plus a local disk per node.
//
// The paper's testbed is six machines on a 10 Gb/s Ethernet switch with
// one 480 GB SSD each. This package reproduces that topology as a
// latency/bandwidth model on the sim virtual clock: transfers cost
// transmit serialization on the sender NIC, propagation latency, and
// receive serialization on the receiver NIC; disk I/O costs a seek/op
// latency plus size over bandwidth, serialized per disk.
package simnet

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"ofc/internal/sim"
)

// NodeID identifies a node in the network.
type NodeID int

// Config carries the fabric constants. The defaults (DefaultConfig)
// follow the paper's testbed.
type Config struct {
	// LinkLatency is the one-way propagation latency between two
	// distinct nodes (switch traversal included).
	LinkLatency time.Duration
	// LoopbackLatency is the one-way latency for a node talking to
	// itself (kernel loopback).
	LoopbackLatency time.Duration
	// Bandwidth is the NIC line rate in bytes per second.
	Bandwidth float64
	// DiskReadLatency and DiskWriteLatency are per-operation costs.
	DiskReadLatency  time.Duration
	DiskWriteLatency time.Duration
	// DiskReadBandwidth and DiskWriteBandwidth are in bytes per second.
	DiskReadBandwidth  float64
	DiskWriteBandwidth float64
	// FailureDetectDelay is the time a sender spends before concluding
	// a peer is unreachable (transport timeout). Zero means ten link
	// latencies.
	FailureDetectDelay time.Duration
}

// DefaultConfig models the paper's testbed: 10 GbE and a SATA SSD.
func DefaultConfig() Config {
	return Config{
		LinkLatency:        25 * time.Microsecond,
		LoopbackLatency:    5 * time.Microsecond,
		Bandwidth:          10e9 / 8, // 10 Gb/s
		DiskReadLatency:    80 * time.Microsecond,
		DiskWriteLatency:   50 * time.Microsecond,
		DiskReadBandwidth:  500e6,
		DiskWriteBandwidth: 450e6,
		FailureDetectDelay: 500 * time.Microsecond,
	}
}

// Network is the cluster fabric: nodes, NICs and disks.
type Network struct {
	env   *sim.Env
	cfg   Config
	mu    sync.Mutex // guards nodes (writes) — readers use nodesA
	nodes []*Node
	// nodesA holds an immutable []*Node snapshot so Node(), on every
	// transfer and RPC, is a lock-free load instead of a mutex
	// round-trip. AddNode republishes the snapshot.
	nodesA atomic.Value
	flt    *faults // failure state, allocated eagerly (see faults.go)
}

// Node is one machine: a transmit NIC, a receive NIC and a disk, each a
// FIFO resource.
type Node struct {
	ID   NodeID
	Name string

	net  *Network
	tx   *sim.Semaphore
	rx   *sim.Semaphore
	disk *sim.Semaphore

	// Traffic counters are atomics: every transfer charges two of them,
	// so a stats mutex would serialize the whole data plane under -race.
	bytesSent atomic.Int64
	bytesRecv atomic.Int64
	diskRead  atomic.Int64
	diskWrite atomic.Int64
}

// New creates an empty network over env with the given constants.
func New(env *sim.Env, cfg Config) *Network {
	if cfg.Bandwidth <= 0 {
		panic("simnet: non-positive bandwidth")
	}
	n := &Network{env: env, cfg: cfg, flt: newFaults()}
	n.nodesA.Store([]*Node(nil))
	return n
}

// Env returns the simulation environment the network runs on.
func (n *Network) Env() *sim.Env { return n.env }

// Config returns the fabric constants.
func (n *Network) Config() Config { return n.cfg }

// AddNode registers a machine and returns it.
func (n *Network) AddNode(name string) *Node {
	n.mu.Lock()
	defer n.mu.Unlock()
	node := &Node{
		ID:   NodeID(len(n.nodes)),
		Name: name,
		net:  n,
		tx:   sim.NewSemaphore(n.env, 1),
		rx:   sim.NewSemaphore(n.env, 1),
		disk: sim.NewSemaphore(n.env, 1),
	}
	n.nodes = append(n.nodes, node)
	snap := make([]*Node, len(n.nodes))
	copy(snap, n.nodes)
	n.nodesA.Store(snap)
	return node
}

// Node returns the node with the given id. Lock-free: it reads the
// published node snapshot, so the per-transfer hot path never touches
// the network mutex.
func (n *Network) Node(id NodeID) *Node {
	nodes := n.nodesA.Load().([]*Node)
	if int(id) < 0 || int(id) >= len(nodes) {
		panic(fmt.Sprintf("simnet: unknown node %d", id))
	}
	return nodes[id]
}

// Nodes returns all registered nodes.
func (n *Network) Nodes() []*Node {
	nodes := n.nodesA.Load().([]*Node)
	out := make([]*Node, len(nodes))
	copy(out, nodes)
	return out
}

// txTime is the serialization time of size bytes at line rate.
func (n *Network) txTime(size int64) time.Duration {
	if size <= 0 {
		return 0
	}
	return time.Duration(float64(size) / n.cfg.Bandwidth * float64(time.Second))
}

// Transfer moves size bytes from one node to another, blocking the
// calling process for the full transfer duration. Same-node transfers
// cost only the loopback latency. Transfer is the legacy infallible
// path: when a fault makes the destination unreachable it still pays
// the failure-detection delay but swallows the error; callers that
// care use TryTransfer.
func (n *Network) Transfer(from, to NodeID, size int64) {
	_ = n.TryTransfer(from, to, size)
}

// TryTransfer moves size bytes from one node to another, blocking the
// calling process for the full transfer duration. It consults the
// fault layer: an unreachable destination (node down or link
// partitioned) costs the failure-detection delay and returns
// ErrUnreachable; a degraded link stretches latency and serialization;
// packet loss adds retransmission rounds.
func (n *Network) TryTransfer(from, to NodeID, size int64) error {
	if from == to {
		if n.NodeDown(from) {
			n.env.Sleep(n.failureDetectDelay())
			return ErrUnreachable
		}
		n.env.Sleep(n.cfg.LoopbackLatency)
		return nil
	}
	lf := n.lookFaults(from, to)
	if !lf.reachable {
		n.env.Sleep(n.failureDetectDelay())
		return ErrUnreachable
	}
	src, dst := n.Node(from), n.Node(to)
	tx := n.txTime(size)
	if lf.bwFactor > 0 && lf.bwFactor < 1 {
		tx = time.Duration(float64(tx) / lf.bwFactor)
	}
	lat := time.Duration(float64(n.cfg.LinkLatency) * lf.latFactor)

	src.tx.Acquire(1)
	n.env.Sleep(tx)
	src.tx.Release(1)

	n.env.Sleep(lat)

	// Each lost packet costs a timeout-free retransmission round: the
	// peer's NACK (or the sender's fast-retransmit) travels back, and
	// the payload is serialized and propagated again.
	for i := 0; i < lf.retransmit; i++ {
		n.env.Sleep(lat) // feedback to sender
		src.tx.Acquire(1)
		n.env.Sleep(tx)
		src.tx.Release(1)
		n.env.Sleep(lat) // resend propagation
	}

	dst.rx.Acquire(1)
	n.env.Sleep(tx)
	dst.rx.Release(1)

	src.bytesSent.Add(size)
	dst.bytesRecv.Add(size)
	return nil
}

// Call performs a synchronous RPC: the request payload travels from
// caller to callee, serve runs (its virtual duration is whatever serve
// itself spends), and the response travels back. It returns serve's
// result.
func Call[T any](n *Network, from, to NodeID, reqSize, respSize int64, serve func() T) T {
	n.Transfer(from, to, reqSize)
	v := serve()
	n.Transfer(to, from, respSize)
	return v
}

// TryCall is the fallible RPC path: if either leg of the round trip
// fails (destination down or partitioned) it returns ErrUnreachable
// and serve's result is the zero value; serve is not invoked when the
// request leg fails.
func TryCall[T any](n *Network, from, to NodeID, reqSize, respSize int64, serve func() T) (T, error) {
	var zero T
	if err := n.TryTransfer(from, to, reqSize); err != nil {
		return zero, err
	}
	v := serve()
	if err := n.TryTransfer(to, from, respSize); err != nil {
		return zero, err
	}
	return v, nil
}

// DiskRead charges a read of size bytes against the node's disk,
// blocking the calling process.
func (nd *Node) DiskRead(size int64) {
	cfg := nd.net.cfg
	slow := nd.net.diskFactor(nd.ID)
	nd.disk.Acquire(1)
	base := cfg.DiskReadLatency + time.Duration(float64(size)/cfg.DiskReadBandwidth*float64(time.Second))
	nd.net.env.Sleep(time.Duration(float64(base) * slow))
	nd.disk.Release(1)
	nd.diskRead.Add(size)
}

// DiskWrite charges a write of size bytes against the node's disk,
// blocking the calling process.
func (nd *Node) DiskWrite(size int64) {
	cfg := nd.net.cfg
	slow := nd.net.diskFactor(nd.ID)
	nd.disk.Acquire(1)
	base := cfg.DiskWriteLatency + time.Duration(float64(size)/cfg.DiskWriteBandwidth*float64(time.Second))
	nd.net.env.Sleep(time.Duration(float64(base) * slow))
	nd.disk.Release(1)
	nd.diskWrite.Add(size)
}

// Stats reports cumulative traffic counters for the node.
func (nd *Node) Stats() (bytesSent, bytesRecv, diskRead, diskWrite int64) {
	return nd.bytesSent.Load(), nd.bytesRecv.Load(), nd.diskRead.Load(), nd.diskWrite.Load()
}
