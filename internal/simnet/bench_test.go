package simnet

import (
	"testing"

	"ofc/internal/sim"
)

// BenchmarkTransfer measures the per-transfer cost of the fabric hot
// path on a healthy network: fault fast path, lock-free node lookup,
// atomic traffic counters.
func BenchmarkTransfer(b *testing.B) {
	env := sim.NewEnv(1)
	n := New(env, DefaultConfig())
	a := n.AddNode("a").ID
	c := n.AddNode("b").ID
	env.Go(func() {
		for i := 0; i < b.N; i++ {
			n.Transfer(a, c, 4096)
		}
	})
	b.ReportAllocs()
	b.ResetTimer()
	env.Run()
}

// BenchmarkTransferFaulted measures the same path with fault state
// injected elsewhere in the fabric, which forces the locked fault
// lookup on every transfer.
func BenchmarkTransferFaulted(b *testing.B) {
	env := sim.NewEnv(1)
	n := New(env, DefaultConfig())
	a := n.AddNode("a").ID
	c := n.AddNode("b").ID
	d := n.AddNode("c").ID
	n.SetNodeDown(d, true)
	env.Go(func() {
		for i := 0; i < b.N; i++ {
			n.Transfer(a, c, 4096)
		}
	})
	b.ReportAllocs()
	b.ResetTimer()
	env.Run()
}

// BenchmarkDiskWrite measures the per-op disk path.
func BenchmarkDiskWrite(b *testing.B) {
	env := sim.NewEnv(1)
	n := New(env, DefaultConfig())
	nd := n.AddNode("a")
	env.Go(func() {
		for i := 0; i < b.N; i++ {
			nd.DiskWrite(4096)
		}
	})
	b.ReportAllocs()
	b.ResetTimer()
	env.Run()
}
