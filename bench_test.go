package ofc

// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (DESIGN.md carries the experiment index). Each iteration
// regenerates the experiment end to end; the benchmark metrics expose
// the headline numbers so `go test -bench` output doubles as a
// reproduction report. Absolute host nanoseconds are incidental — the
// custom metrics (improvement percentages, accuracies, hit ratios) are
// the reproduced quantities.

import (
	"testing"
	"time"

	"ofc/internal/experiments"
)

// BenchmarkFigure2_MemoryScatter regenerates the motivation scatter of
// memory vs input size / sigma.
func BenchmarkFigure2_MemoryScatter(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tab := experiments.Figure2(500, 1)
		if len(tab.Rows) != 500 {
			b.Fatal("missing rows")
		}
	}
}

// BenchmarkFigure3_RSDSLatency regenerates the ETL split against
// S3-like and Redis-like backends.
func BenchmarkFigure3_RSDSLatency(b *testing.B) {
	b.ReportAllocs()
	var share float64
	for i := 0; i < b.N; i++ {
		_, rows := experiments.Figure3(1)
		for _, r := range rows {
			if r.Workload == "sharp_resize" && r.Size == 128<<10 && r.Backend == "S3" {
				share = r.ELShare()
			}
		}
	}
	b.ReportMetric(share*100, "E&L-share-%")
}

// BenchmarkTable1_MLAccuracy regenerates the algorithm × interval-size
// accuracy sweep.
func BenchmarkTable1_MLAccuracy(b *testing.B) {
	b.ReportAllocs()
	cfg := experiments.DefaultTable1Config()
	for i := 0; i < b.N; i++ {
		tab := experiments.Table1(cfg)
		if len(tab.Rows) != 12 {
			b.Fatal("incomplete table")
		}
	}
}

// BenchmarkTable1_CacheBenefit regenerates the §7.1.1 benefit
// classifier scores.
func BenchmarkTable1_CacheBenefit(b *testing.B) {
	b.ReportAllocs()
	var f1 float64
	for i := 0; i < b.N; i++ {
		_, res := experiments.CacheBenefit(400, 1)
		f1 = res.F1
	}
	b.ReportMetric(f1*100, "F1-%")
}

// BenchmarkFigure5_ErrorDistribution regenerates the prediction-error
// histogram.
func BenchmarkFigure5_ErrorDistribution(b *testing.B) {
	b.ReportAllocs()
	var within3, waste float64
	for i := 0; i < b.N; i++ {
		_, res := experiments.Figure5(450, 1)
		within3, waste = res.WithinThree, res.AvgOverWasteMB
	}
	b.ReportMetric(within3*100, "over-within-3-intervals-%")
	b.ReportMetric(waste, "mean-over-waste-MB")
}

// BenchmarkFigure6_PredictionSpeed measures classifier latency (host
// time — this figure is a real algorithm measurement).
func BenchmarkFigure6_PredictionSpeed(b *testing.B) {
	b.ReportAllocs()
	var j48, forest time.Duration
	for i := 0; i < b.N; i++ {
		_, res := experiments.Figure6(450, 1)
		j48 = res["J48/16MB"].Median
		forest = res["RandomForest/16MB"].Median
	}
	b.ReportMetric(float64(j48.Nanoseconds())/1e3, "J48-median-µs")
	b.ReportMetric(float64(forest.Nanoseconds())/1e3, "forest-median-µs")
}

// BenchmarkMaturation regenerates the §7.1.3 maturation-quickness
// distribution.
func BenchmarkMaturation(b *testing.B) {
	b.ReportAllocs()
	var median, p95 int
	for i := 0; i < b.N; i++ {
		_, res := experiments.Maturation(1)
		median, p95 = res.Median, res.P95
	}
	b.ReportMetric(float64(median), "median-invocations")
	b.ReportMetric(float64(p95), "p95-invocations")
}

// BenchmarkFigure7_CacheBenefits regenerates the full Figure 7 sweep
// (6 single-stage functions + 4 pipelines × input sizes × 5 systems).
func BenchmarkFigure7_CacheBenefits(b *testing.B) {
	b.ReportAllocs()
	var bestSingle, bestPipe float64
	for i := 0; i < b.N; i++ {
		_, rows := experiments.Figure7(false, 1)
		base := map[string]time.Duration{}
		for _, r := range rows {
			if r.Scenario == experiments.ScenSwift {
				base[r.Workload+string(rune(r.Size))] = r.Total()
			}
		}
		for _, r := range rows {
			if r.Scenario != experiments.ScenLH {
				continue
			}
			imp := 1 - float64(r.Total())/float64(base[r.Workload+string(rune(r.Size))])
			single := false
			for _, n := range []string{"wand_blur", "wand_resize", "wand_sepia", "wand_rotate", "wand_denoise", "wand_edge"} {
				if r.Workload == n {
					single = true
				}
			}
			if single && imp > bestSingle {
				bestSingle = imp
			}
			if !single && imp > bestPipe {
				bestPipe = imp
			}
		}
	}
	b.ReportMetric(bestSingle*100, "best-single-stage-improvement-%")
	b.ReportMetric(bestPipe*100, "best-pipeline-improvement-%")
}

// BenchmarkFigure8_ScalingImpact regenerates the cache down-scaling
// impact scenarios.
func BenchmarkFigure8_ScalingImpact(b *testing.B) {
	b.ReportAllocs()
	var sc1 time.Duration
	for i := 0; i < b.N; i++ {
		_, rows := experiments.Figure8(1)
		for _, r := range rows {
			if r.Scenario == "Sc1" {
				sc1 = r.ScalingTime
			}
		}
	}
	b.ReportMetric(float64(sc1.Microseconds()), "Sc1-scaling-µs")
}

// BenchmarkMigrationSeries regenerates the §7.2.1 migration-time
// series.
func BenchmarkMigrationSeries(b *testing.B) {
	b.ReportAllocs()
	var gb time.Duration
	for i := 0; i < b.N; i++ {
		_, series := experiments.MigrationSeries(1)
		gb = series[1<<30]
	}
	b.ReportMetric(float64(gb.Milliseconds()), "1GB-promotion-ms")
}

// BenchmarkFigure9_Macro regenerates the 8-tenant macro experiment
// across the three tenant profiles (OWK-Swift vs OFC, 30 minutes).
func BenchmarkFigure9_Macro(b *testing.B) {
	b.ReportAllocs()
	var avgImp float64
	for i := 0; i < b.N; i++ {
		_, runs := experiments.Figure9(30*time.Minute, 1)
		var sum float64
		n := 0
		for _, pair := range runs {
			for ti, sr := range pair[0].Reports {
				or := pair[1].Reports[ti]
				if sr.TotalExec > 0 {
					sum += 1 - float64(or.TotalExec)/float64(sr.TotalExec)
					n++
				}
			}
		}
		if n > 0 {
			avgImp = sum / float64(n)
		}
	}
	b.ReportMetric(avgImp*100, "avg-improvement-%")
}

// BenchmarkFigure10_CacheSize regenerates the cache-size-over-time
// series of the macro runs.
func BenchmarkFigure10_CacheSize(b *testing.B) {
	b.ReportAllocs()
	var peak float64
	for i := 0; i < b.N; i++ {
		cfg := experiments.DefaultMacroConfig()
		res := experiments.RunMacro(cfg)
		for _, p := range res.CacheSeries {
			if g := float64(p.Grant) / float64(1<<30); g > peak {
				peak = g
			}
		}
	}
	b.ReportMetric(peak, "peak-cache-GB")
}

// BenchmarkTable2_InternalMetrics regenerates the OFC internal-metrics
// table from a macro run.
func BenchmarkTable2_InternalMetrics(b *testing.B) {
	b.ReportAllocs()
	var hit float64
	for i := 0; i < b.N; i++ {
		cfg := experiments.DefaultMacroConfig()
		res := experiments.RunMacro(cfg)
		hit = res.HitRatio
	}
	b.ReportMetric(hit*100, "hit-ratio-%")
}

// BenchmarkMacro24Tenants regenerates the 24-tenant contention run.
func BenchmarkMacro24Tenants(b *testing.B) {
	b.ReportAllocs()
	var hit float64
	var failures int64
	for i := 0; i < b.N; i++ {
		_, _, ofcRes := experiments.Macro24(30*time.Minute, 1)
		hit = ofcRes.HitRatio
		failures = ofcRes.Platform.Failures
	}
	b.ReportMetric(hit*100, "hit-ratio-%")
	b.ReportMetric(float64(failures), "failed-invocations")
}

// Ablation benches for the DESIGN.md design choices.

// BenchmarkAblationWriteback compares shadow write-back against
// synchronous RSDS writes.
func BenchmarkAblationWriteback(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if tab := experiments.AblationWriteback(1); len(tab.Rows) == 0 {
			b.Fatal("empty")
		}
	}
}

// BenchmarkAblationMigration compares promotion against full transfer.
func BenchmarkAblationMigration(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if tab := experiments.AblationMigration(1); len(tab.Rows) == 0 {
			b.Fatal("empty")
		}
	}
}

// BenchmarkAblationRouting compares locality routing against hashing.
func BenchmarkAblationRouting(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if tab := experiments.AblationRouting(1); len(tab.Rows) == 0 {
			b.Fatal("empty")
		}
	}
}

// BenchmarkAblationIntervalBump compares the conservative bump against
// raw predictions.
func BenchmarkAblationIntervalBump(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if tab := experiments.AblationIntervalBump(1); len(tab.Rows) == 0 {
			b.Fatal("empty")
		}
	}
}

// BenchmarkExtensionResilience exercises worker fail-stop recovery.
func BenchmarkExtensionResilience(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, healthy := experiments.Resilience(1); !healthy {
			b.Fatal("recovery run unhealthy")
		}
	}
}

// BenchmarkExtensionChunking measures the large-object striping
// extension against the synchronous baseline.
func BenchmarkExtensionChunking(b *testing.B) {
	b.ReportAllocs()
	var saving float64
	for i := 0; i < b.N; i++ {
		_, out := experiments.ChunkingExtension(1)
		saving = 1 - float64(out[true])/float64(out[false])
	}
	b.ReportMetric(saving*100, "load-phase-saving-%")
}

// BenchmarkAblationKeepAlive sweeps the sandbox keep-alive window.
func BenchmarkAblationKeepAlive(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if tab := experiments.AblationKeepAlive(1); len(tab.Rows) != 3 {
			b.Fatal("incomplete")
		}
	}
}

// BenchmarkAblationConsistency compares strong vs relaxed write paths.
func BenchmarkAblationConsistency(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if tab := experiments.AblationConsistency(1); len(tab.Rows) != 2 {
			b.Fatal("incomplete")
		}
	}
}
