# OFC reproduction — convenience targets.

GO ?= go

.PHONY: all build test race vet bench repro scorecard clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# One benchmark per table/figure, headline quantities as metrics.
bench:
	$(GO) test -bench=. -benchmem -benchtime 1x -run '^$$' ./...

# Regenerate every table and figure of the paper's evaluation.
repro:
	$(GO) run ./cmd/ofc-bench -exp all

scorecard:
	$(GO) run ./cmd/ofc-bench -exp summary

clean:
	$(GO) clean ./...
