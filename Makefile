# OFC reproduction — convenience targets.

GO ?= go

.PHONY: all check build test race test-race vet bench repro scorecard clean

all: check

# The default gate: build, vet, full tests, then the race detector over
# the concurrency-heavy packages (cache cluster, proxy/resilience, chaos).
check: build vet test test-race

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

test-race:
	$(GO) test -race ./internal/kvstore/... ./internal/core/... ./internal/chaos/...

vet:
	$(GO) vet ./...

# One benchmark per table/figure, headline quantities as metrics.
bench:
	$(GO) test -bench=. -benchmem -benchtime 1x -run '^$$' ./...

# Regenerate every table and figure of the paper's evaluation.
repro:
	$(GO) run ./cmd/ofc-bench -exp all

scorecard:
	$(GO) run ./cmd/ofc-bench -exp summary

clean:
	$(GO) clean ./...
