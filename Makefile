# OFC reproduction — convenience targets.

GO ?= go

.PHONY: all check build test test-cover race test-race vet lint lint-fix bench bench-store bench-sim bench-ml bench-baseline benchdiff repro scorecard smoke-overload smoke-policies smoke-trace clean

all: check

# The default gate: build, vet, the determinism/correctness analyzers,
# full tests, the race detector over the concurrency-heavy packages
# (cache cluster, proxy/resilience, chaos), coverage with the trace
# floor, then the end-to-end overload drill, the memctl policy-ablation
# grid and the golden-trace determinism smoke.
check: build vet lint test test-race test-cover smoke-overload smoke-policies smoke-trace

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Statement coverage: repo-wide report (informational) with a hard
# floor on internal/trace — the golden-trace harness is the point of
# that subsystem, so its coverage slipping fails the build.
test-cover:
	$(GO) test -coverprofile=cover.out ./...
	$(GO) run ./scripts/covercheck -profile cover.out -pkg ofc/internal/trace -floor 70

race:
	$(GO) test -race ./...

test-race:
	$(GO) test -race ./internal/sim/... ./internal/kvstore/... ./internal/store/... ./internal/core/... ./internal/chaos/... ./internal/trace/...

vet:
	$(GO) vet ./...

# Repo-specific static analysis: wall-clock reads, global rand, sentinel
# identity comparisons, blocking sim calls under mutexes, metric naming,
# map-iteration order leaking into output, plus the whole-program
# concurrency gate (lock-order cycles, atomic/plain access mixes,
# untied goroutines, stale suppressions).
# Exits non-zero on any unsuppressed finding.
lint:
	$(GO) run ./cmd/ofc-lint ./...

# Apply every suggested fix (errors.Is rewrites, stale-directive
# deletions), then re-check. The CI lint job asserts this produces no
# diff on a clean tree, which proves the fixes are idempotent.
lint-fix:
	$(GO) run ./cmd/ofc-lint -fix ./...

# One benchmark per table/figure, headline quantities as metrics.
bench:
	$(GO) test -bench=. -benchmem -benchtime 1x -run '^$$' ./...

# Storage data-plane evidence: sharded vs single-lock coordinator under
# parallel clients, and batched vs per-key multi-reads.
bench-store:
	$(GO) test -bench 'BenchmarkCoordinator|BenchmarkReadMulti' -benchmem -cpu 8 -run '^$$' ./internal/kvstore/

# Scheduler/data-plane micro-benchmarks (CI smoke: -benchtime 1x keeps
# it to one iteration per benchmark; drop BENCHTIME for real numbers).
BENCHTIME ?= 1x
bench-sim:
	$(GO) test -bench 'Sleep|After|Batch|Future|Queue|Cluster|ReadMulti|Transfer' -benchmem -benchtime $(BENCHTIME) -run '^$$' ./internal/sim/ ./internal/simnet/ ./internal/kvstore/

# Invocation critical-path evidence: pointer-walk vs compiled tree
# inference, forest voting, and the end-to-end memoized Advise lookup
# (CI smoke: -benchtime=10x; drop it for real numbers).
bench-ml:
	$(GO) test -run '^$$' -bench 'Classify|Advise' -benchmem -benchtime 10x ./internal/mltree ./internal/core

# Regenerate the committed perf snapshot (quick sweep + micro benches).
bench-baseline:
	$(GO) run ./cmd/ofc-bench -exp all -quick -benchout BENCH_sim.json

# Compare two perf snapshots: make benchdiff OLD=BENCH_sim.json NEW=new.json
benchdiff:
	$(GO) run ./scripts $(OLD) $(NEW)

# Regenerate every table and figure of the paper's evaluation.
repro:
	$(GO) run ./cmd/ofc-bench -exp all

scorecard:
	$(GO) run ./cmd/ofc-bench -exp summary

# End-to-end degradation drill: 5x tenant spike + mid-spike node crash.
# The drill must shed load, walk Normal->Brownout->Shed and back, keep
# retries under the budget cap and lose no acknowledged write.
smoke-overload:
	$(GO) run ./cmd/ofc-bench -exp overload -quick

# Memory-control-plane ablation: the full eviction × slack grid in
# quick mode (~10 s). Guards the memctl seam end to end — every
# registered policy must still deploy, fill the cache, and satisfy the
# scale-down reclaim probe.
smoke-policies:
	$(GO) run ./cmd/ofc-bench -exp policies -quick

# Golden-trace determinism smoke: the fixed-seed drill must export
# bit-identical Chrome-trace JSON and validate as well-formed.
# Intentional changes regenerate with OFC_REGEN_GOLDEN=1.
smoke-trace:
	$(GO) test ./internal/experiments -run 'TestGoldenTrace|TestTraceDrill' -count=1

clean:
	$(GO) clean ./...
