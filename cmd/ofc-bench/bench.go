package main

import (
	"encoding/json"
	"os"
	"runtime"
	"testing"
	"time"

	"ofc/internal/experiments"
	"ofc/internal/sim"
)

// BenchEntry is one micro-benchmark in the perf snapshot.
type BenchEntry struct {
	Name         string  `json:"name"`
	NsPerOp      float64 `json:"ns_per_op"`
	AllocsPerOp  float64 `json:"allocs_per_op"`
	BytesPerOp   float64 `json:"bytes_per_op"`
	EventsPerSec float64 `json:"events_per_sec,omitempty"`
}

// ExpEntry records one experiment's host wall-clock time.
type ExpEntry struct {
	ID     string  `json:"id"`
	WallMs float64 `json:"wall_ms"`
}

// QualityEntry is a deterministic behavioral metric (virtual-clock
// counters, not host timings): same seed, same value on every machine,
// so benchdiff can gate on it with zero noise floor.
type QualityEntry struct {
	Name         string  `json:"name"`
	Value        float64 `json:"value"`
	HigherBetter bool    `json:"higher_better"`
}

// BenchFile is the BENCH_sim.json schema: scheduler micro-benchmarks
// plus per-experiment wall-clock and deterministic quality metrics,
// the perf trajectory future changes regress against via
// scripts/benchdiff.go.
type BenchFile struct {
	GoMaxProcs  int            `json:"gomaxprocs"`
	Micro       []BenchEntry   `json:"micro"`
	Experiments []ExpEntry     `json:"experiments"`
	Quality     []QualityEntry `json:"quality,omitempty"`
	TotalWallMs float64        `json:"total_wall_ms"`
}

// writeBenchFile runs the scheduler micro-benchmarks and writes the
// snapshot alongside the per-experiment wall-clock numbers.
func writeBenchFile(path string, exps []ExpEntry, total time.Duration) error {
	f := BenchFile{
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		Micro:       microBenchmarks(),
		Experiments: exps,
		Quality:     qualityMetrics(),
		TotalWallMs: float64(total.Microseconds()) / 1e3,
	}
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// qualityMetrics runs the overload drill and the policy-ablation grid
// (quick mode, fixed seed) and extracts their headline counters.
// Everything here lives on the virtual clock, so the numbers are
// bit-identical across hosts — a drop in goodput or a hit-ratio shift
// in a policy cell is a behavior change, not noise.
func qualityMetrics() []QualityEntry {
	_, res := experiments.Overload(1, true)
	var good int64
	for _, t := range res.Tenants {
		good += t.Good
	}
	healthy := 0.0
	if res.Healthy() {
		healthy = 1
	}
	out := []QualityEntry{
		{Name: "overload/goodput", Value: float64(good), HigherBetter: true},
		{Name: "overload/spike_p99_ms", Value: float64(res.SpikeP99.Microseconds()) / 1e3},
		{Name: "overload/total_retries", Value: float64(res.TotalRetries())},
		{Name: "overload/lost_outputs", Value: float64(res.LostOutputs)},
		{Name: "overload/healthy", Value: healthy, HigherBetter: true},
	}
	_, rows := experiments.Policies(1, true, nil, nil)
	for _, r := range rows {
		cell := r.Eviction + "+" + r.Slack
		out = append(out,
			QualityEntry{Name: "policies/" + cell + "/hit_ratio", Value: r.HitRatio, HigherBetter: true},
			QualityEntry{Name: "policies/" + cell + "/p99_ms", Value: float64(r.P99.Microseconds()) / 1e3},
			QualityEntry{Name: "policies/" + cell + "/reclaim_ms", Value: float64(r.ReclaimLat.Microseconds()) / 1e3},
		)
	}
	return out
}

// microBenchmarks exercises the scheduler hot paths through
// testing.Benchmark, reporting allocation rates and event throughput.
func microBenchmarks() []BenchEntry {
	var out []BenchEntry
	add := func(name string, env **sim.Env, fn func(b *testing.B)) {
		r := testing.Benchmark(fn)
		e := BenchEntry{
			Name:        name,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: float64(r.AllocsPerOp()),
			BytesPerOp:  float64(r.AllocedBytesPerOp()),
		}
		if env != nil && *env != nil && r.T > 0 {
			e.EventsPerSec = float64((*env).Events()) / r.T.Seconds()
		}
		out = append(out, e)
	}

	var env *sim.Env
	add("SleepEvent", &env, func(b *testing.B) {
		b.ReportAllocs()
		env = sim.NewEnv(1)
		env.Go(func() {
			for i := 0; i < b.N; i++ {
				env.Sleep(time.Microsecond)
			}
		})
		b.ResetTimer()
		env.Run()
	})

	add("AfterCallback", &env, func(b *testing.B) {
		b.ReportAllocs()
		env = sim.NewEnv(1)
		n := 0
		var tick func()
		tick = func() {
			n++
			if n < b.N {
				env.After(time.Microsecond, tick)
			}
		}
		env.After(time.Microsecond, tick)
		b.ResetTimer()
		env.Run()
	})

	add("BatchWakeup", &env, func(b *testing.B) {
		b.ReportAllocs()
		env = sim.NewEnv(1)
		e := env
		const fan = 64
		rounds := b.N/fan + 1
		for i := 0; i < fan; i++ {
			e.Go(func() {
				for r := 0; r < rounds; r++ {
					e.Sleep(time.Microsecond)
				}
			})
		}
		b.ResetTimer()
		e.Run()
	})

	add("FutureRoundTrip", nil, func(b *testing.B) {
		b.ReportAllocs()
		e := sim.NewEnv(1)
		e.Go(func() {
			for i := 0; i < b.N; i++ {
				f := sim.NewFuture[int](e)
				e.Go(func() { f.Set(1) })
				f.Wait()
			}
		})
		b.ResetTimer()
		e.Run()
	})

	return out
}
