package main

import (
	"encoding/json"
	"math/rand"
	"os"
	"runtime"
	"testing"
	"time"

	"ofc/internal/core"
	"ofc/internal/experiments"
	"ofc/internal/faas"
	"ofc/internal/kvstore"
	"ofc/internal/sim"
)

// BenchEntry is one micro-benchmark in the perf snapshot.
type BenchEntry struct {
	Name         string  `json:"name"`
	NsPerOp      float64 `json:"ns_per_op"`
	AllocsPerOp  float64 `json:"allocs_per_op"`
	BytesPerOp   float64 `json:"bytes_per_op"`
	EventsPerSec float64 `json:"events_per_sec,omitempty"`
}

// ExpEntry records one experiment's host wall-clock time.
type ExpEntry struct {
	ID     string  `json:"id"`
	WallMs float64 `json:"wall_ms"`
}

// QualityEntry is a deterministic behavioral metric (virtual-clock
// counters, not host timings): same seed, same value on every machine,
// so benchdiff can gate on it with zero noise floor.
type QualityEntry struct {
	Name         string  `json:"name"`
	Value        float64 `json:"value"`
	HigherBetter bool    `json:"higher_better"`
}

// BenchFile is the BENCH_sim.json schema: scheduler micro-benchmarks
// plus per-experiment wall-clock and deterministic quality metrics,
// the perf trajectory future changes regress against via
// scripts/benchdiff.go.
type BenchFile struct {
	GoMaxProcs  int            `json:"gomaxprocs"`
	Micro       []BenchEntry   `json:"micro"`
	Experiments []ExpEntry     `json:"experiments"`
	Quality     []QualityEntry `json:"quality,omitempty"`
	TotalWallMs float64        `json:"total_wall_ms"`
}

// writeBenchFile runs the scheduler micro-benchmarks and writes the
// snapshot alongside the per-experiment wall-clock numbers.
func writeBenchFile(path string, exps []ExpEntry, total time.Duration) error {
	f := BenchFile{
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		Micro:       microBenchmarks(),
		Experiments: exps,
		Quality:     qualityMetrics(),
		TotalWallMs: float64(total.Microseconds()) / 1e3,
	}
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// qualityMetrics runs the overload drill and the policy-ablation grid
// (quick mode, fixed seed) and extracts their headline counters.
// Everything here lives on the virtual clock, so the numbers are
// bit-identical across hosts — a drop in goodput or a hit-ratio shift
// in a policy cell is a behavior change, not noise.
func qualityMetrics() []QualityEntry {
	_, res := experiments.Overload(1, true)
	var good int64
	for _, t := range res.Tenants {
		good += t.Good
	}
	healthy := 0.0
	if res.Healthy() {
		healthy = 1
	}
	out := []QualityEntry{
		{Name: "overload/goodput", Value: float64(good), HigherBetter: true},
		{Name: "overload/spike_p99_ms", Value: float64(res.SpikeP99.Microseconds()) / 1e3},
		{Name: "overload/total_retries", Value: float64(res.TotalRetries())},
		{Name: "overload/lost_outputs", Value: float64(res.LostOutputs)},
		{Name: "overload/healthy", Value: healthy, HigherBetter: true},
	}
	_, rows := experiments.Policies(1, true, nil, nil)
	for _, r := range rows {
		cell := r.Eviction + "+" + r.Slack
		out = append(out,
			QualityEntry{Name: "policies/" + cell + "/hit_ratio", Value: r.HitRatio, HigherBetter: true},
			QualityEntry{Name: "policies/" + cell + "/p99_ms", Value: float64(r.P99.Microseconds()) / 1e3},
			QualityEntry{Name: "policies/" + cell + "/reclaim_ms", Value: float64(r.ReclaimLat.Microseconds()) / 1e3},
		)
	}
	// The trace drill is fully deterministic: span coverage shrinking or
	// drops appearing is an instrumentation regression, and a per-phase
	// total moving is a latency change on that path.
	_, tres := experiments.TraceDrill(1)
	out = append(out,
		QualityEntry{Name: "trace/spans", Value: float64(len(tres.Spans)), HigherBetter: true},
		QualityEntry{Name: "trace/drops", Value: float64(tres.Drops)},
	)
	for _, st := range tres.Breakdown {
		out = append(out, QualityEntry{
			Name:  "trace/phase/" + st.Phase + "_total_ms",
			Value: float64(st.Total) / 1e6,
		})
	}
	return out
}

// microBenchmarks exercises the scheduler hot paths through
// testing.Benchmark, reporting allocation rates and event throughput.
func microBenchmarks() []BenchEntry {
	var out []BenchEntry
	add := func(name string, env **sim.Env, fn func(b *testing.B)) {
		r := testing.Benchmark(fn)
		e := BenchEntry{
			Name:        name,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: float64(r.AllocsPerOp()),
			BytesPerOp:  float64(r.AllocedBytesPerOp()),
		}
		if env != nil && *env != nil && r.T > 0 {
			e.EventsPerSec = float64((*env).Events()) / r.T.Seconds()
		}
		out = append(out, e)
	}

	var env *sim.Env
	add("SleepEvent", &env, func(b *testing.B) {
		b.ReportAllocs()
		env = sim.NewEnv(1)
		env.Go(func() {
			for i := 0; i < b.N; i++ {
				env.Sleep(time.Microsecond)
			}
		})
		b.ResetTimer()
		env.Run()
	})

	add("AfterCallback", &env, func(b *testing.B) {
		b.ReportAllocs()
		env = sim.NewEnv(1)
		n := 0
		var tick func()
		tick = func() {
			n++
			if n < b.N {
				env.After(time.Microsecond, tick)
			}
		}
		env.After(time.Microsecond, tick)
		b.ResetTimer()
		env.Run()
	})

	add("BatchWakeup", &env, func(b *testing.B) {
		b.ReportAllocs()
		env = sim.NewEnv(1)
		e := env
		const fan = 64
		rounds := b.N/fan + 1
		for i := 0; i < fan; i++ {
			e.Go(func() {
				for r := 0; r < rounds; r++ {
					e.Sleep(time.Microsecond)
				}
			})
		}
		b.ResetTimer()
		e.Run()
	})

	add("FutureRoundTrip", nil, func(b *testing.B) {
		b.ReportAllocs()
		e := sim.NewEnv(1)
		e.Go(func() {
			for i := 0; i < b.N; i++ {
				f := sim.NewFuture[int](e)
				e.Go(func() { f.Set(1) })
				f.Wait()
			}
		})
		b.ResetTimer()
		e.Run()
	})

	// Invocation critical-path benchmarks: the advice lookup the
	// controller runs before placement and the proxy's warm/cold read
	// paths (§5.1's latency budget).
	add("AdviseHot", nil, func(b *testing.B) {
		b.ReportAllocs()
		pred := core.NewPredictor(core.DefaultPredictorConfig())
		trainer := core.NewModelTrainer(pred, sim.NewEnv(1))
		fn := &faas.Function{Name: "blur", Tenant: "t", InputType: "image",
			ArgNames: []string{"sigma"}, MemoryBooked: 2 << 30}
		trainer.Pretrain(fn, benchSamples(pred.Schema(fn), 2000, 7))
		req := &faas.Request{Function: fn, Args: map[string]float64{"sigma": 3},
			InputFeatures: map[string]float64{"size": 64 * 1024, "width": 800, "height": 600, "channels": 3}}
		pred.Advise(req) // memoize
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			pred.Advise(req)
		}
	})

	add("GetHit", nil, func(b *testing.B) {
		b.ReportAllocs()
		sys := benchSystem(1)
		w := sys.WorkerNodes[0]
		sys.Env.Go(func() {
			sys.KV.SetMemoryLimit(w, 1<<30)
			if _, err := sys.Backend.Write(w, "img/hot", kvstore.Synthetic(4<<10), nil, w); err != nil {
				b.Errorf("seed write: %v", err)
				return
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := sys.RC.Get(w, "img/hot", faas.PutOpts{}); err != nil {
					b.Errorf("get: %v", err)
					return
				}
			}
		})
		sys.Env.Run()
	})

	add("GetMissCoalesced", nil, func(b *testing.B) {
		b.ReportAllocs()
		sys := benchSystem(1)
		sys.RC.EnableMissCoalescing()
		w := sys.WorkerNodes[0]
		const fan = 4
		sys.Env.Go(func() {
			sys.RSDS.Put(sys.CtrlNode, "img/cold", kvstore.Synthetic(64<<10), nil, false)
			b.ResetTimer()
			// One op = a fan of concurrent misses sharing one RSDS fetch
			// (uncacheable, so every round misses again).
			for i := 0; i < b.N; i++ {
				wg := sim.NewWaitGroup(sys.Env)
				for j := 0; j < fan; j++ {
					wg.Add(1)
					sys.Env.Go(func() {
						defer wg.Done()
						if _, err := sys.RC.Get(w, "img/cold", faas.PutOpts{}); err != nil {
							b.Errorf("get: %v", err)
						}
					})
				}
				wg.Wait()
			}
		})
		sys.Env.Run()
	})

	return out
}

// benchSystem builds a small quiet system for proxy-path benchmarks:
// no cache agents, grants driven manually.
func benchSystem(seed int64) *core.System {
	opts := core.DefaultOptions()
	opts.Seed = seed
	opts.Workers = 3
	opts.NodeCapacity = 4 << 30
	opts.DisableCacheAgents = true
	return core.NewSystem(opts)
}

// benchSamples synthesizes a training set for the predictor benchmarks
// (the internal/core test generator, reproduced for the snapshot tool).
func benchSamples(schema *core.FeatureSchema, n int, seed int64) []core.Sample {
	rng := rand.New(rand.NewSource(seed))
	type input struct{ size, width float64 }
	pool := make([]input, 16)
	for i := range pool {
		pool[i] = input{
			size:  float64(1+rng.Intn(128)) * 1024,
			width: float64(100 + rng.Intn(19)*100),
		}
	}
	out := make([]core.Sample, 0, n)
	for i := 0; i < n; i++ {
		in := pool[rng.Intn(len(pool))]
		sigma := float64(1+rng.Intn(8)) * 0.5
		mem := int64(64<<20) + int64(in.size/1024)*(1<<20) + int64(20*sigma)*(1<<20)
		vals := make([]float64, len(schema.Names()))
		for j, name := range schema.Names() {
			switch name {
			case "size":
				vals[j] = in.size
			case "width":
				vals[j] = in.width
			case "height":
				vals[j] = in.width * 0.75
			case "channels":
				vals[j] = 3
			case "sigma":
				vals[j] = sigma
			}
		}
		out = append(out, core.Sample{
			Vals: vals, PeakMem: mem,
			Extract: 40 * time.Millisecond, Transform: 20 * time.Millisecond, Load: 115 * time.Millisecond,
			BenefitKnown: true,
		})
	}
	return out
}
