// Command ofc-bench regenerates the paper's tables and figures and
// prints them as text tables.
//
// Usage:
//
//	ofc-bench -exp all
//	ofc-bench -exp fig7 -seed 3
//	ofc-bench -exp table1 -quick
//	ofc-bench -list
//
// Experiment ids follow DESIGN.md's per-experiment index: summary,
// fig2, fig3, table1, benefit, fig5, fig6, maturation, fig7, fig7x5,
// fig8, migration, fig9 (also prints fig10 and table2), macro24,
// ablations, resilience, chaos, chunking.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"ofc/internal/experiments"
)

type experiment struct {
	id   string
	desc string
	run  func(seed int64, quick bool)
}

// emit renders a result table; -format csv swaps it for CSV output.
var emit = func(t *experiments.Table) { fmt.Println(t) }

func main() {
	var (
		exp    = flag.String("exp", "all", "experiment id (or 'all')")
		seed   = flag.Int64("seed", 1, "random seed")
		quick  = flag.Bool("quick", false, "smaller sweeps for a fast pass")
		list   = flag.Bool("list", false, "list experiment ids and exit")
		format = flag.String("format", "table", "output format: table | csv")
	)
	flag.Parse()
	if *format == "csv" {
		emit = func(t *experiments.Table) { fmt.Print(t.CSV()) }
	}

	exps := registry()
	if *list {
		for _, e := range exps {
			fmt.Printf("%-11s %s\n", e.id, e.desc)
		}
		return
	}
	var chosen []experiment
	if *exp == "all" {
		chosen = exps
	} else {
		for _, e := range exps {
			if e.id == *exp {
				chosen = append(chosen, e)
			}
		}
	}
	if len(chosen) == 0 {
		fmt.Fprintf(os.Stderr, "unknown experiment %q; use -list\n", *exp)
		os.Exit(1)
	}
	for _, e := range chosen {
		start := time.Now()
		e.run(*seed, *quick)
		fmt.Printf("(%s took %v)\n\n", e.id, time.Since(start).Round(time.Millisecond))
	}
}

func registry() []experiment {
	exps := []experiment{
		{"summary", "one-screen reproduction scorecard (paper vs measured)", func(seed int64, quick bool) {
			emit(experiments.Summary(seed))
		}},
		{"fig2", "motivation: memory vs input size and sigma scatter", func(seed int64, quick bool) {
			n := 500
			if quick {
				n = 100
			}
			tab := experiments.Figure2(n, seed)
			// The full scatter is long; print summary bands.
			fmt.Println(summarizeFig2(tab))
		}},
		{"fig3", "motivation: ETL split, S3-like vs Redis-like", func(seed int64, quick bool) {
			tab, _ := experiments.Figure3(seed)
			emit(tab)
		}},
		{"table1", "ML accuracy: 4 algorithms × {32,16,8} MB intervals", func(seed int64, quick bool) {
			cfg := experiments.DefaultTable1Config()
			cfg.Seed = seed
			if quick {
				cfg.SamplesPerFunction, cfg.Folds, cfg.ForestSize = 150, 4, 8
			}
			emit(experiments.Table1(cfg))
		}},
		{"benefit", "caching-benefit classifier precision/recall/F1", func(seed int64, quick bool) {
			n := 400
			if quick {
				n = 150
			}
			tab, _ := experiments.CacheBenefit(n, seed)
			emit(tab)
		}},
		{"fig5", "prediction-error distribution (J48, 16 MB)", func(seed int64, quick bool) {
			n := 450
			if quick {
				n = 150
			}
			tab, _ := experiments.Figure5(n, seed)
			emit(tab)
		}},
		{"fig6", "prediction latency (host time)", func(seed int64, quick bool) {
			tab, _ := experiments.Figure6(450, seed)
			emit(tab)
		}},
		{"maturation", "model maturation quickness", func(seed int64, quick bool) {
			tab, _ := experiments.Maturation(seed)
			emit(tab)
		}},
		{"fig7", "cache benefits: Swift/Redis/OFC{LH,M,RH} sweep", func(seed int64, quick bool) {
			tab, _ := experiments.Figure7(quick, seed)
			emit(tab)
		}},
		{"fig7x5", "Figure 7 replicated across 5 seeds (paper's averaging)", func(seed int64, quick bool) {
			seeds := []int64{seed, seed + 1, seed + 2, seed + 3, seed + 4}
			emit(experiments.Figure7Replicated(seeds))
		}},
		{"fig8", "cache down-scaling impact (Sc0–Sc3)", func(seed int64, quick bool) {
			tab, _ := experiments.Figure8(seed)
			emit(tab)
		}},
		{"migration", "optimized migration time vs aggregate size", func(seed int64, quick bool) {
			tab, _ := experiments.MigrationSeries(seed)
			emit(tab)
		}},
		{"fig9", "macro: 8 tenants × 3 profiles (plus fig10 + table2)", func(seed int64, quick bool) {
			window := 30 * time.Minute
			if quick {
				window = 8 * time.Minute
			}
			tab, runs := experiments.Figure9(window, seed)
			emit(tab)
			emit(experiments.Figure10(runs))
			emit(experiments.Table2(runs))
		}},
		{"macro24", "macro with 24 tenants (contention)", func(seed int64, quick bool) {
			window := 30 * time.Minute
			if quick {
				window = 8 * time.Minute
			}
			tab, _, _ := experiments.Macro24(window, seed)
			emit(tab)
		}},
		{"ablations", "design-choice ablations (write-back, migration, routing, bump)", func(seed int64, quick bool) {
			emit(experiments.AblationWriteback(seed))
			emit(experiments.AblationMigration(seed))
			emit(experiments.AblationRouting(seed))
			emit(experiments.AblationIntervalBump(seed))
			emit(experiments.AblationKeepAlive(seed))
			emit(experiments.AblationConsistency(seed))
		}},
		{"constants", "micro constants (§6.4/§7.2.1) measured end to end", func(seed int64, quick bool) {
			emit(experiments.Constants(seed))
		}},
		{"resilience", "worker fail-stop + RAMCloud-style recovery", func(seed int64, quick bool) {
			tab, _ := experiments.Resilience(seed)
			emit(tab)
		}},
		{"chaos", "kill-one-node-per-minute chaos drill (graceful degradation)", func(seed int64, quick bool) {
			tab, res := experiments.Chaos(seed, quick)
			emit(tab)
			for _, line := range res.Applied {
				fmt.Println("  event:", line)
			}
		}},
		{"chunking", "large-object striping extension (§6.1 future work)", func(seed int64, quick bool) {
			tab, _ := experiments.ChunkingExtension(seed)
			emit(tab)
		}},
		{"storeplane", "storage data plane: sharded coordinator + batched multi-object ops", func(seed int64, quick bool) {
			tab, _ := experiments.StorePlane(seed)
			emit(tab)
		}},
	}
	sort.SliceStable(exps, func(i, j int) bool { return false }) // keep declaration order
	return exps
}

// summarizeFig2 compresses the scatter into per-band min/max rows.
func summarizeFig2(tab *experiments.Table) string {
	type band struct{ lo, hi int64 }
	var sb strings.Builder
	sb.WriteString("== Figure 2 — wand_blur memory bands ==\n")
	sb.WriteString("(full scatter: run the Figure2 API; summary below)\n")
	bands := []struct {
		name     string
		from, to float64
	}{
		{"size < 1MB", 0, 1 << 20}, {"1–3MB", 1 << 20, 3 << 20}, {"3–6MB", 3 << 20, 6 << 20},
	}
	for _, bd := range bands {
		b := band{lo: 1 << 62, hi: 0}
		for _, row := range tab.Rows {
			var size float64
			var mem int64
			fmt.Sscan(row[0], &size)
			fmt.Sscan(row[2], &mem)
			if size >= bd.from && size < bd.to {
				if mem < b.lo {
					b.lo = mem
				}
				if mem > b.hi {
					b.hi = mem
				}
			}
		}
		fmt.Fprintf(&sb, "%-12s memory %d..%d MB\n", bd.name, b.lo, b.hi)
	}
	return sb.String()
}
