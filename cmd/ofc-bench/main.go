// Command ofc-bench regenerates the paper's tables and figures and
// prints them as text tables.
//
// Usage:
//
//	ofc-bench -exp all
//	ofc-bench -exp fig7 -seed 3
//	ofc-bench -exp table1 -quick
//	ofc-bench -exp all -jobs 4 -benchout BENCH_sim.json
//	ofc-bench -list
//
// Experiment ids follow DESIGN.md's per-experiment index: summary,
// fig2, fig3, table1, benefit, fig5, fig6, maturation, fig7, fig7x5,
// fig8, migration, fig9 (also prints fig10 and table2), macro24,
// ablations, constants, resilience, chaos, overload, policies,
// chunking, storeplane. The policies grid additionally honors -evict
// and -slack to scope the eviction × slack matrix.
//
// Independent experiments run concurrently on a GOMAXPROCS-bounded
// worker pool (-jobs overrides); each experiment buffers its output
// and results stream in declaration order, so the report reads the
// same regardless of parallelism. -benchout additionally runs the
// scheduler/storage micro-benchmarks and writes a machine-readable
// perf snapshot (see bench.go) for scripts/benchdiff.go to regress
// against.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"ofc/internal/experiments"
	"ofc/internal/memctl"
)

// output collects one experiment's report. Each run gets its own, so
// experiments can execute concurrently and still print in order.
type output struct {
	buf bytes.Buffer
	csv bool
}

// emit renders a result table into the run's buffer.
func (o *output) emit(t *experiments.Table) {
	if o.csv {
		o.buf.WriteString(t.CSV())
		return
	}
	fmt.Fprintln(&o.buf, t)
}

func (o *output) printf(format string, args ...interface{}) {
	fmt.Fprintf(&o.buf, format, args...)
}

type experiment struct {
	id   string
	desc string
	run  func(o *output, seed int64, quick bool)
}

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment id (or 'all')")
		seed     = flag.Int64("seed", 1, "random seed")
		quick    = flag.Bool("quick", false, "smaller sweeps for a fast pass")
		list     = flag.Bool("list", false, "list experiment ids and exit")
		format   = flag.String("format", "table", "output format: table | csv")
		jobs     = flag.Int("jobs", runtime.GOMAXPROCS(0), "experiments to run concurrently")
		benchout = flag.String("benchout", "", "write a BENCH_sim.json perf snapshot to this path")
	)
	flag.StringVar(&evictFlag, "evict", "", "policies experiment: comma-separated eviction policies (default: all)")
	flag.StringVar(&slackFlag, "slack", "", "policies experiment: comma-separated slack estimators (default: all)")
	flag.Parse()

	if err := checkPolicyFlags(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	exps := registry()
	if *list {
		for _, e := range exps {
			fmt.Printf("%-11s %s\n", e.id, e.desc)
		}
		return
	}
	var chosen []experiment
	if *exp == "all" {
		chosen = exps
	} else {
		for _, e := range exps {
			if e.id == *exp {
				chosen = append(chosen, e)
			}
		}
	}
	if len(chosen) == 0 {
		fmt.Fprintf(os.Stderr, "unknown experiment %q; use -list\n", *exp)
		os.Exit(1)
	}

	wallStart := time.Now()
	type done struct {
		out  *output
		took time.Duration
	}
	results := make([]chan done, len(chosen))
	for i := range results {
		results[i] = make(chan done, 1)
	}
	// Bounded fan-out over the chosen experiments; each has its own
	// seed-derived Envs, so runs are independent.
	sem := make(chan struct{}, max(1, *jobs))
	for i, e := range chosen {
		i, e := i, e
		go func() {
			sem <- struct{}{}
			defer func() { <-sem }()
			o := &output{csv: *format == "csv"}
			start := time.Now()
			e.run(o, *seed, *quick)
			results[i] <- done{out: o, took: time.Since(start)}
		}()
	}
	// Stream in declaration order: experiment i prints as soon as it
	// and all its predecessors are finished.
	wall := make([]ExpEntry, 0, len(chosen))
	for i, e := range chosen {
		d := <-results[i]
		os.Stdout.Write(d.out.buf.Bytes())
		fmt.Printf("(%s took %v)\n\n", e.id, d.took.Round(time.Millisecond))
		wall = append(wall, ExpEntry{ID: e.id, WallMs: float64(d.took.Microseconds()) / 1e3})
	}

	if *benchout != "" {
		if err := writeBenchFile(*benchout, wall, time.Since(wallStart)); err != nil {
			fmt.Fprintf(os.Stderr, "benchout: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote perf snapshot to %s\n", *benchout)
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// evictFlag and slackFlag scope the policies experiment's grid; empty
// means the full memctl registry.
var evictFlag, slackFlag string

// checkPolicyFlags rejects unknown -evict/-slack names up front, so a
// typo gets a flag error instead of a panic mid-grid.
func checkPolicyFlags() error {
	known := func(names []string) map[string]bool {
		m := make(map[string]bool, len(names))
		for _, n := range names {
			m[n] = true
		}
		return m
	}
	evict, slack := known(memctl.EvictionPolicies()), known(memctl.SlackEstimators())
	for _, n := range splitList(evictFlag) {
		if !evict[n] {
			return fmt.Errorf("unknown eviction policy %q; known: %s", n, strings.Join(memctl.EvictionPolicies(), ", "))
		}
	}
	for _, n := range splitList(slackFlag) {
		if !slack[n] {
			return fmt.Errorf("unknown slack estimator %q; known: %s", n, strings.Join(memctl.SlackEstimators(), ", "))
		}
	}
	return nil
}

// splitList parses a comma-separated flag into a slice (nil if empty).
func splitList(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

func registry() []experiment {
	return []experiment{
		{"summary", "one-screen reproduction scorecard (paper vs measured)", func(o *output, seed int64, quick bool) {
			o.emit(experiments.Summary(seed))
		}},
		{"fig2", "motivation: memory vs input size and sigma scatter", func(o *output, seed int64, quick bool) {
			n := 500
			if quick {
				n = 100
			}
			tab := experiments.Figure2(n, seed)
			// The full scatter is long; print summary bands.
			o.printf("%s\n", summarizeFig2(tab))
		}},
		{"fig3", "motivation: ETL split, S3-like vs Redis-like", func(o *output, seed int64, quick bool) {
			tab, _ := experiments.Figure3(seed)
			o.emit(tab)
		}},
		{"table1", "ML accuracy: 4 algorithms × {32,16,8} MB intervals", func(o *output, seed int64, quick bool) {
			cfg := experiments.DefaultTable1Config()
			cfg.Seed = seed
			if quick {
				cfg.SamplesPerFunction, cfg.Folds, cfg.ForestSize = 150, 4, 8
			}
			o.emit(experiments.Table1(cfg))
		}},
		{"benefit", "caching-benefit classifier precision/recall/F1", func(o *output, seed int64, quick bool) {
			n := 400
			if quick {
				n = 150
			}
			tab, _ := experiments.CacheBenefit(n, seed)
			o.emit(tab)
		}},
		{"fig5", "prediction-error distribution (J48, 16 MB)", func(o *output, seed int64, quick bool) {
			n := 450
			if quick {
				n = 150
			}
			tab, _ := experiments.Figure5(n, seed)
			o.emit(tab)
		}},
		{"fig6", "prediction latency (host time)", func(o *output, seed int64, quick bool) {
			tab, _ := experiments.Figure6(450, seed)
			o.emit(tab)
		}},
		{"maturation", "model maturation quickness", func(o *output, seed int64, quick bool) {
			tab, _ := experiments.Maturation(seed)
			o.emit(tab)
		}},
		{"fig7", "cache benefits: Swift/Redis/OFC{LH,M,RH} sweep", func(o *output, seed int64, quick bool) {
			tab, _ := experiments.Figure7(quick, seed)
			o.emit(tab)
		}},
		{"fig7x5", "Figure 7 replicated across 5 seeds (paper's averaging)", func(o *output, seed int64, quick bool) {
			seeds := []int64{seed, seed + 1, seed + 2, seed + 3, seed + 4}
			o.emit(experiments.Figure7Replicated(seeds))
		}},
		{"fig8", "cache down-scaling impact (Sc0–Sc3)", func(o *output, seed int64, quick bool) {
			tab, _ := experiments.Figure8(seed)
			o.emit(tab)
		}},
		{"migration", "optimized migration time vs aggregate size", func(o *output, seed int64, quick bool) {
			tab, _ := experiments.MigrationSeries(seed)
			o.emit(tab)
		}},
		{"fig9", "macro: 8 tenants × 3 profiles (plus fig10 + table2)", func(o *output, seed int64, quick bool) {
			window := 30 * time.Minute
			if quick {
				window = 8 * time.Minute
			}
			tab, runs := experiments.Figure9(window, seed)
			o.emit(tab)
			o.emit(experiments.Figure10(runs))
			o.emit(experiments.Table2(runs))
		}},
		{"macro24", "macro with 24 tenants (contention)", func(o *output, seed int64, quick bool) {
			window := 30 * time.Minute
			if quick {
				window = 8 * time.Minute
			}
			tab, _, _ := experiments.Macro24(window, seed)
			o.emit(tab)
		}},
		{"ablations", "design-choice ablations (write-back, migration, routing, bump)", func(o *output, seed int64, quick bool) {
			o.emit(experiments.AblationWriteback(seed))
			o.emit(experiments.AblationMigration(seed))
			o.emit(experiments.AblationRouting(seed))
			o.emit(experiments.AblationIntervalBump(seed))
			o.emit(experiments.AblationKeepAlive(seed))
			o.emit(experiments.AblationConsistency(seed))
		}},
		{"constants", "micro constants (§6.4/§7.2.1) measured end to end", func(o *output, seed int64, quick bool) {
			o.emit(experiments.Constants(seed))
		}},
		{"resilience", "worker fail-stop + RAMCloud-style recovery", func(o *output, seed int64, quick bool) {
			tab, _ := experiments.Resilience(seed)
			o.emit(tab)
		}},
		{"chaos", "kill-one-node-per-minute chaos drill (graceful degradation)", func(o *output, seed int64, quick bool) {
			tab, res := experiments.Chaos(seed, quick)
			o.emit(tab)
			for _, line := range res.Applied {
				o.printf("  event: %s\n", line)
			}
		}},
		{"overload", "5x tenant spike + mid-spike crash: admission, budgets, degradation states", func(o *output, seed int64, quick bool) {
			tab, res := experiments.Overload(seed, quick)
			o.emit(tab)
			o.printf("  healthy: %v\n", res.Healthy())
		}},
		{"policies", "memctl ablation: eviction × slack policy grid", func(o *output, seed int64, quick bool) {
			tab, _ := experiments.Policies(seed, quick, splitList(evictFlag), splitList(slackFlag))
			o.emit(tab)
		}},
		{"chunking", "large-object striping extension (§6.1 future work)", func(o *output, seed int64, quick bool) {
			tab, _ := experiments.ChunkingExtension(seed)
			o.emit(tab)
		}},
		{"storeplane", "storage data plane: sharded coordinator + batched multi-object ops", func(o *output, seed int64, quick bool) {
			tab, _ := experiments.StorePlane(seed)
			o.emit(tab)
		}},
		{"trace", "deterministic end-to-end span drill: per-phase latency breakdown", func(o *output, seed int64, quick bool) {
			tab, res := experiments.TraceDrill(seed)
			o.emit(tab)
			o.printf("  spans: %d  dropped: %d\n", len(res.Spans), res.Drops)
		}},
	}
}

// summarizeFig2 compresses the scatter into per-band min/max rows.
func summarizeFig2(tab *experiments.Table) string {
	type band struct{ lo, hi int64 }
	var sb strings.Builder
	sb.WriteString("== Figure 2 — wand_blur memory bands ==\n")
	sb.WriteString("(full scatter: run the Figure2 API; summary below)\n")
	bands := []struct {
		name     string
		from, to float64
	}{
		{"size < 1MB", 0, 1 << 20}, {"1–3MB", 1 << 20, 3 << 20}, {"3–6MB", 3 << 20, 6 << 20},
	}
	for _, bd := range bands {
		b := band{lo: 1 << 62, hi: 0}
		for _, row := range tab.Rows {
			var size float64
			var mem int64
			fmt.Sscan(row[0], &size)
			fmt.Sscan(row[2], &mem)
			if size >= bd.from && size < bd.to {
				if mem < b.lo {
					b.lo = mem
				}
				if mem > b.hi {
					b.hi = mem
				}
			}
		}
		fmt.Fprintf(&sb, "%-12s memory %d..%d MB\n", bd.name, b.lo, b.hi)
	}
	return sb.String()
}
