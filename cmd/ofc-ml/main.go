// Command ofc-ml is the offline machine-learning workbench (the
// repository's equivalent of the paper artifact's machine-learning
// folder): generate per-function training datasets as CSV, train and
// evaluate J48 models, and save/load them in the Predictor wire format.
//
// Usage:
//
//	ofc-ml -cmd gen   -fn wand_blur -n 450 -data blur.csv
//	ofc-ml -cmd train -fn wand_blur -data blur.csv -model blur.json
//	ofc-ml -cmd eval  -fn wand_blur -data blur.csv -model blur.json
//	ofc-ml -cmd bench -fn wand_blur -data blur.csv
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"time"

	"ofc/internal/core"
	"ofc/internal/mltree"
	"ofc/internal/objstore"
	"ofc/internal/workload"
)

func main() {
	var (
		cmd   = flag.String("cmd", "gen", "gen | train | eval | bench")
		fname = flag.String("fn", "wand_blur", "one of the 19 function names")
		n     = flag.Int("n", 450, "samples to generate")
		data  = flag.String("data", "dataset.csv", "dataset CSV path")
		model = flag.String("model", "model.json", "model JSON path")
		seed  = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()

	spec := workload.SpecByName(*fname)
	if spec == nil {
		fatalf("unknown function %q; see workload.Specs()", *fname)
	}
	su := workload.NewSuite()
	fn := su.Build(spec, "ml", 0)
	schema := core.NewFeatureSchema(fn)
	iv := core.DefaultIntervals()

	switch *cmd {
	case "gen":
		rng := rand.New(rand.NewSource(*seed))
		sizes := map[string][]int64{
			"image": {1 << 10, 16 << 10, 32 << 10, 64 << 10, 128 << 10, 1 << 20, 3 << 20},
			"audio": {256 << 10, 1 << 20, 4 << 20, 8 << 20},
			"video": {2 << 20, 5 << 20, 8 << 20},
			"text":  {512 << 10, 2 << 20, 5 << 20, 10 << 20},
		}[spec.InputType]
		if sizes == nil {
			sizes = []int64{64 << 10, 1 << 20}
		}
		pool := workload.NewInputPool(rng, spec.InputType, "ml/"+spec.Name, sizes, 4)
		samples := workload.TrainingSamples(spec, fn, pool, *n, rng, objstore.SwiftProfile())
		d := mltree.NewDataset(schema.Attributes(), iv.ClassNames())
		for _, s := range samples {
			d.Add(s.Vals, iv.ClassOf(s.PeakMem))
		}
		f, err := os.Create(*data)
		check(err)
		check(d.WriteCSV(f))
		check(f.Close())
		fmt.Printf("wrote %d samples for %s to %s (%d features, %d classes)\n",
			d.Len(), spec.Name, *data, len(schema.Names()), len(d.Classes))

	case "train":
		d := loadCSV(*data, schema, iv)
		conf := mltree.CrossValidate(mltree.NewJ48(), d, 10, *seed)
		tree := mltree.NewJ48().Fit(d).(*mltree.Tree)
		raw, err := mltree.MarshalTree(tree)
		check(err)
		check(os.WriteFile(*model, raw, 0o644))
		fmt.Printf("trained J48 on %d samples: %s\n", d.Len(), tree)
		fmt.Printf("10-fold CV: exact=%.2f%% exact-or-over=%.2f%% under-within-1=%.2f%%\n",
			conf.Accuracy()*100, conf.EOAccuracy()*100, conf.UnderWithinOne()*100)
		fmt.Printf("model written to %s (%d bytes)\n", *model, len(raw))

	case "eval":
		d := loadCSV(*data, schema, iv)
		raw, err := os.ReadFile(*model)
		check(err)
		tree, err := mltree.UnmarshalTree(raw)
		check(err)
		conf := mltree.Evaluate(tree, d)
		fmt.Printf("evaluated %s on %d samples: exact=%.2f%% exact-or-over=%.2f%%\n",
			*model, d.Len(), conf.Accuracy()*100, conf.EOAccuracy()*100)

	case "bench":
		d := loadCSV(*data, schema, iv)
		tree := mltree.NewJ48().Fit(d).(*mltree.Tree)
		const reps = 100000
		start := time.Now()
		for i := 0; i < reps; i++ {
			tree.Classify(d.Instances[i%d.Len()].Vals)
		}
		per := time.Since(start) / reps
		fmt.Printf("J48 classification: %v per prediction (%d reps, tree %s)\n", per, reps, tree)

	default:
		fatalf("unknown -cmd %q", *cmd)
	}
}

func loadCSV(path string, schema *core.FeatureSchema, iv core.Intervals) *mltree.Dataset {
	f, err := os.Open(path)
	check(err)
	defer f.Close()
	d, err := mltree.ReadCSV(f, schema.Attributes(), iv.ClassNames())
	check(err)
	return d
}

func check(err error) {
	if err != nil {
		fatalf("%v", err)
	}
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}
