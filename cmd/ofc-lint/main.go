// Command ofc-lint runs the repository's determinism & correctness
// analysis suite (internal/lint) over Go packages and prints findings
// as `file:line: [analyzer] message`.
//
// Usage:
//
//	ofc-lint [flags] [packages]
//
//	ofc-lint ./...                    # whole repo (the make lint gate)
//	ofc-lint -run wallclock ./internal/...
//	ofc-lint -list
//	ofc-lint -suppressed ./...        # also show //lint:allow'ed findings
//	ofc-lint -fix ./...               # apply suggested fixes, re-check
//	ofc-lint -json ./...              # machine-readable findings for CI
//
// Exit status: 0 when clean, 1 on unsuppressed findings, 2 on load or
// usage errors. Findings are suppressed with a trailing or preceding
// `//lint:allow <analyzer> <reason>` comment; the reason is mandatory
// and stale directives are themselves flagged (and deleted by -fix).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"ofc/internal/lint"
)

func main() {
	var (
		run        = flag.String("run", "", "comma-separated analyzer names (default: all)")
		list       = flag.Bool("list", false, "list analyzers and exit")
		suppressed = flag.Bool("suppressed", false, "also print suppressed findings")
		fix        = flag.Bool("fix", false, "apply suggested fixes, then re-run and report what remains")
		jsonOut    = flag.Bool("json", false, "print findings as a JSON array (CI annotation format)")
	)
	flag.Parse()

	if *list {
		for _, a := range lint.All() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers, err := lint.ByName(*run)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	findings, err := runOnce(cwd, patterns, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	if *fix {
		res, err := lint.ApplyFixes(findings)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		if res.Applied > 0 {
			for _, f := range res.Files {
				if rel, err := filepath.Rel(cwd, f); err == nil && !filepath.IsAbs(rel) {
					f = rel
				}
				fmt.Fprintf(os.Stderr, "ofc-lint: fixed %s\n", f)
			}
			fmt.Fprintf(os.Stderr, "ofc-lint: applied %d fix(es) in %d file(s)\n", res.Applied, len(res.Files))
			// The files changed under the analyzers: re-run for the
			// post-fix truth (and to prove the fixes were idempotent).
			findings, err = runOnce(cwd, patterns, analyzers)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
		}
		if res.Skipped > 0 {
			fmt.Fprintf(os.Stderr, "ofc-lint: %d fix(es) skipped due to overlap; run -fix again\n", res.Skipped)
		}
	}

	shown := findings[:0]
	for _, f := range findings {
		if f.Suppressed && !*suppressed {
			continue
		}
		if rel, err := filepath.Rel(cwd, f.File); err == nil && !filepath.IsAbs(rel) {
			f.File = rel
		}
		shown = append(shown, f)
	}

	bad := 0
	for _, f := range shown {
		if !f.Suppressed {
			bad++
		}
	}
	if *jsonOut {
		if err := lint.EncodeJSON(os.Stdout, shown); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	} else {
		for _, f := range shown {
			tag := ""
			if f.Suppressed {
				tag = " (suppressed)"
			}
			fmt.Printf("%s%s\n", f, tag)
		}
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "ofc-lint: %d finding(s)\n", bad)
		os.Exit(1)
	}
}

// runOnce loads the pattern set fresh and runs the analyzers. -fix
// calls it twice: edits invalidate the first load's positions.
func runOnce(cwd string, patterns []string, analyzers []*lint.Analyzer) ([]lint.Finding, error) {
	pkgs, err := lint.NewLoader().LoadPatterns(cwd, patterns...)
	if err != nil {
		return nil, err
	}
	return lint.Run(pkgs, analyzers)
}
