// Command ofc-lint runs the repository's determinism & correctness
// analysis suite (internal/lint) over Go packages and prints findings
// as `file:line: [analyzer] message`.
//
// Usage:
//
//	ofc-lint [flags] [packages]
//
//	ofc-lint ./...                    # whole repo (the make lint gate)
//	ofc-lint -run wallclock ./internal/...
//	ofc-lint -list
//	ofc-lint -suppressed ./...        # also show //lint:allow'ed findings
//
// Exit status: 0 when clean, 1 on unsuppressed findings, 2 on load or
// usage errors. Findings are suppressed with a trailing or preceding
// `//lint:allow <analyzer> <reason>` comment; the reason is mandatory.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"ofc/internal/lint"
)

func main() {
	var (
		run        = flag.String("run", "", "comma-separated analyzer names (default: all)")
		list       = flag.Bool("list", false, "list analyzers and exit")
		suppressed = flag.Bool("suppressed", false, "also print suppressed findings")
	)
	flag.Parse()

	if *list {
		for _, a := range lint.All() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers, err := lint.ByName(*run)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	pkgs, err := lint.NewLoader().LoadPatterns(cwd, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	findings, err := lint.Run(pkgs, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	bad := 0
	for _, f := range findings {
		if f.Suppressed && !*suppressed {
			continue
		}
		if rel, err := filepath.Rel(cwd, f.File); err == nil && !filepath.IsAbs(rel) {
			f.File = rel
		}
		tag := ""
		if f.Suppressed {
			tag = " (suppressed)"
		} else {
			bad++
		}
		fmt.Printf("%s%s\n", f, tag)
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "ofc-lint: %d finding(s) in %d package(s)\n", bad, len(pkgs))
		os.Exit(1)
	}
}
