// Command ofc-wsk is a wsk-flavored explorer for the simulated
// platform: it deploys one of the catalog functions onto a fresh OFC
// stack, fires a few invocations, and prints the activation records —
// the `wsk action invoke` / `wsk activation list` loop, compressed
// into one run.
//
// Usage:
//
//	ofc-wsk -list
//	ofc-wsk -action wand_blur -size 64k -repeat 3
//	ofc-wsk -action wand_edge -size 16k -repeat 2 -nocache
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"
	"time"

	"ofc"
	"ofc/internal/workload"
)

func main() {
	var (
		list    = flag.Bool("list", false, "list catalog functions and exit")
		action  = flag.String("action", "wand_blur", "catalog function to deploy")
		sizeStr = flag.String("size", "64k", "input size (e.g. 16k, 1m)")
		repeat  = flag.Int("repeat", 3, "number of invocations")
		nocache = flag.Bool("nocache", false, "disable OFC advice (vanilla sizing, no caching)")
		seed    = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()

	if *list {
		fmt.Printf("%-20s %-6s %-10s %s\n", "name", "type", "booked", "args")
		for _, s := range ofc.Specs() {
			fmt.Printf("%-20s %-6s %-10s %s\n", s.Name, s.InputType,
				fmt.Sprintf("%dMB", s.Booked>>20), strings.Join(s.ArgNames, ","))
		}
		return
	}

	size, err := parseSize(*sizeStr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	spec := ofc.SpecByName(*action)
	if spec == nil {
		fmt.Fprintf(os.Stderr, "unknown action %q; try -list\n", *action)
		os.Exit(1)
	}

	sys := ofc.NewSystem(ofc.DefaultOptions())
	su := workload.NewSuite()
	rng := rand.New(rand.NewSource(*seed))
	fn := su.Build(spec, "wsk", 0)
	sys.Register(fn)
	pool := workload.NewInputPool(rng, spec.InputType, "wsk", []int64{size}, 2)
	if *nocache {
		sys.Platform.Advisor = nil
	} else {
		sys.Trainer.Pretrain(fn, workload.TrainingSamples(spec, fn, pool, 300, rng, sys.RSDS.Profile()))
	}

	sys.Run(func() {
		pool.Stage(workload.RSDSWriter{Suite: su, Store: sys.RSDS, Node: sys.CtrlNode})
		for i := 0; i < *repeat; i++ {
			in := pool.Inputs[i%len(pool.Inputs)]
			sys.Platform.Invoke(workload.NewRequest(fn, spec, in, spec.GenArgs(rng)))
			sys.Env.Sleep(time.Second)
		}
	})

	fmt.Printf("deployed %s (input %s, OFC advice %v)\n\n", spec.Name, *sizeStr, !*nocache)
	fmt.Printf("%-14s %-22s %-10s %-10s %-10s %-10s %-6s %s\n",
		"activation", "function", "duration", "E", "T", "L", "cold", "sandbox")
	for _, a := range sys.Platform.Activations(0) {
		fmt.Printf("%-14s %-22s %-10v %-10v %-10v %-10v %-6v %dMB\n",
			a.ID, a.Function, a.Duration.Round(time.Millisecond),
			a.Extract.Round(time.Microsecond), a.Transform.Round(time.Millisecond),
			a.Load.Round(time.Microsecond), a.Cold, a.SandboxMemMB)
	}
	fmt.Printf("\ncache: hit-ratio=%.1f%%  stats=%+v\n", sys.RC.HitRatio()*100, sys.RC.Stats())
}

// parseSize reads "64k", "1m", "512" style sizes.
func parseSize(s string) (int64, error) {
	s = strings.ToLower(strings.TrimSpace(s))
	mult := int64(1)
	switch {
	case strings.HasSuffix(s, "m"):
		mult, s = 1<<20, strings.TrimSuffix(s, "m")
	case strings.HasSuffix(s, "k"):
		mult, s = 1<<10, strings.TrimSuffix(s, "k")
	}
	v, err := strconv.ParseInt(s, 10, 64)
	if err != nil || v <= 0 {
		return 0, fmt.Errorf("bad size %q", s)
	}
	return v * mult, nil
}
