// Command ofc-sim runs an ad-hoc macro scenario: a chosen number of
// tenants firing the paper's workload mix at a FaaS deployment, with
// or without OFC, and prints per-tenant results plus OFC internals.
//
// Usage:
//
//	ofc-sim -mode ofc -tenants 8 -window 30m -profile normal
//	ofc-sim -mode swift -tenants 24 -window 10m -mean 30s
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"ofc/internal/experiments"
	"ofc/internal/workload"
)

func main() {
	var (
		mode     = flag.String("mode", "ofc", "system under test: ofc | swift")
		tenants  = flag.Int("tenants", 8, "tenant count (multiple of 8)")
		window   = flag.Duration("window", 10*time.Minute, "observation window (virtual time)")
		mean     = flag.Duration("mean", time.Minute, "mean invocation interval")
		profile  = flag.String("profile", "normal", "tenant memory profile: normal | naive | advanced")
		capacity = flag.Int64("capacity", 256<<30, "per-worker memory capacity (bytes)")
		seed     = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()

	cfg := experiments.DefaultMacroConfig()
	cfg.Window = *window
	cfg.MeanInterval = *mean
	cfg.Seed = *seed
	cfg.NodeCapacity = *capacity
	cfg.TenantsPerWorkload = *tenants / 8
	if cfg.TenantsPerWorkload < 1 {
		cfg.TenantsPerWorkload = 1
	}
	switch *mode {
	case "ofc":
		cfg.Mode = experiments.ModeOFC
	case "swift":
		cfg.Mode = experiments.ModeSwift
	default:
		fmt.Fprintf(os.Stderr, "unknown mode %q\n", *mode)
		os.Exit(1)
	}
	switch *profile {
	case "normal":
		cfg.Profile = workload.ProfileNormal
	case "naive":
		cfg.Profile = workload.ProfileNaive
	case "advanced":
		cfg.Profile = workload.ProfileAdvanced
	default:
		fmt.Fprintf(os.Stderr, "unknown profile %q\n", *profile)
		os.Exit(1)
	}

	start := time.Now()
	res := experiments.RunMacro(cfg)
	host := time.Since(start)

	fmt.Printf("mode=%s tenants=%d window=%v profile=%s (host time %v)\n\n",
		*mode, cfg.TenantsPerWorkload*8, cfg.Window, cfg.Profile, host.Round(time.Millisecond))
	fmt.Printf("%-22s %12s %10s %8s %8s %8s\n", "tenant", "invocations", "total", "E", "T", "L")
	for _, r := range res.Reports {
		fmt.Printf("%-22s %12d %10.2fs %7.1fs %7.1fs %7.1fs\n",
			r.Name, r.Invocations, r.TotalExec.Seconds(), r.TotalE.Seconds(), r.TotalT.Seconds(), r.TotalL.Seconds())
	}
	fmt.Printf("\ntotal execution time: %.2fs\n", res.TotalExec().Seconds())
	fmt.Printf("platform: invocations=%d cold=%d warm=%d oom=%d rescues=%d failures=%d\n",
		res.Platform.Invocations, res.Platform.ColdStarts, res.Platform.WarmStarts,
		res.Platform.OOMKills, res.Platform.Rescues, res.Platform.Failures)
	if cfg.Mode == experiments.ModeOFC {
		fmt.Printf("ofc: hit-ratio=%.2f%% good-pred=%d bad-pred=%d ephemeral=%.2fGB\n",
			res.HitRatio*100, res.GoodPred, res.BadPred, float64(res.Ephemeral)/float64(1<<30))
		fmt.Printf("agents: scale-ups=%d scale-downs=%d/%d/%d (none/migration/eviction)\n",
			res.Agent.ScaleUps, res.Agent.ScaleDownNoEviction, res.Agent.ScaleDownMigration, res.Agent.ScaleDownEviction)
		if n := len(res.CacheSeries); n > 0 {
			var peak int64
			for _, p := range res.CacheSeries {
				if p.Bytes > peak {
					peak = p.Bytes
				}
			}
			fmt.Printf("cache: %d samples, peak %.2fGB, final %.2fGB\n",
				n, float64(peak)/float64(1<<30), float64(res.CacheSeries[n-1].Bytes)/float64(1<<30))
		}
	}
}
