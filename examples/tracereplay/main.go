// Tracereplay: replay a production-style invocation trace (one offset
// per line, seconds) against an OFC deployment — the workflow the
// paper motivates with the Azure Functions characterization (Shahrad
// et al.): bursty, irregular arrivals that keep-alive alone handles
// poorly and OFC's hoarded memory absorbs.
//
//	go run ./examples/tracereplay
//	go run ./examples/tracereplay -trace my.csv
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strings"
	"time"

	"ofc"
	"ofc/internal/workload"
)

// builtinTrace is a bursty synthetic trace: two dense bursts separated
// by a quiet period.
const builtinTrace = `# burst 1
5
5.4
6.1
6.2
7.0
8.5
# quiet ...
95
# burst 2
180
180.2
181
181.5
182
183
184.5
186
`

func main() {
	tracePath := flag.String("trace", "", "trace CSV (one offset in seconds per line); empty uses a built-in bursty trace")
	seed := flag.Int64("seed", 1, "random seed for inputs and training")
	flag.Parse()

	var offsets []time.Duration
	var err error
	if *tracePath == "" {
		offsets, err = workload.LoadTraceCSV(strings.NewReader(builtinTrace))
	} else {
		var f *os.File
		if f, err = os.Open(*tracePath); err == nil {
			defer f.Close()
			offsets, err = workload.LoadTraceCSV(f)
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	sys := ofc.NewSystem(ofc.DefaultOptions())
	su := workload.NewSuite()
	rng := rand.New(rand.NewSource(*seed))
	spec := ofc.SpecByName("wand_watermark")
	fn := su.Build(spec, "trace", 0)
	sys.Register(fn)
	pool := workload.NewInputPool(rng, "image", "trace", []int64{32 << 10, 64 << 10}, 3)
	sys.Trainer.Pretrain(fn, workload.TrainingSamples(spec, fn, pool, 300, rng, sys.RSDS.Profile()))

	fl := workload.NewFaaSLoad(sys.Env, sys.Platform, *seed+1)
	fl.AddTraceTenant("trace", spec, fn, pool, offsets)

	window := offsets[len(offsets)-1] + time.Minute
	sys.Env.SetHorizon(window + time.Minute)
	sys.Start()
	sys.Env.Go(func() {
		pool.Stage(workload.RSDSWriter{Suite: su, Store: sys.RSDS, Node: sys.CtrlNode})
		fl.Start(window)
	})
	sys.Env.Run()

	rep := fl.Reports()[0]
	fmt.Printf("replayed %d invocations over %v (virtual)\n", rep.Invocations, window.Round(time.Second))
	fmt.Printf("cold starts: %d   failures: %d\n", rep.ColdStarts, rep.Failures)
	fmt.Printf("phases: E=%v T=%v L=%v   total exec=%v\n",
		rep.TotalE.Round(time.Millisecond), rep.TotalT.Round(time.Millisecond),
		rep.TotalL.Round(time.Millisecond), rep.TotalExec.Round(time.Millisecond))
	fmt.Printf("cache: hit ratio %.1f%%\n", sys.RC.HitRatio()*100)

	fmt.Println("\nmost recent activations:")
	for _, a := range sys.Platform.Activations(6) {
		fmt.Printf("  %s %-16s start=%-8v dur=%-10v cold=%-5v E=%v\n",
			a.ID, a.Function, a.Start.Round(time.Millisecond), a.Duration.Round(time.Millisecond), a.Cold, a.Extract.Round(time.Microsecond))
	}
}
