// Triggers: watch a bucket prefix and invoke a function on every
// external upload — the "updates within a given object storage bucket"
// trigger of §2.1, including the §5.1.2 synchronous feature extraction
// this path requires (the object was never seen before, so its
// features can't come from a sidecar).
//
//	go run ./examples/triggers
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"time"

	"ofc"
	"ofc/internal/core"
	"ofc/internal/workload"
)

func main() {
	seed := flag.Int64("seed", 1, "random seed for inputs and feature extraction")
	flag.Parse()

	sys := ofc.NewSystem(ofc.DefaultOptions())
	su := workload.NewSuite()
	rng := rand.New(rand.NewSource(*seed))

	spec := ofc.SpecByName("sharp_resize")
	thumb := su.Build(spec, "studio", 0)
	sys.Register(thumb)
	pool := workload.NewInputPool(rng, "image", "warm", []int64{64 << 10, 256 << 10}, 3)
	sys.Trainer.Pretrain(thumb, workload.TrainingSamples(spec, thumb, pool, 300, rng, sys.RSDS.Profile()))

	// The extractor stands in for decoding the uploaded image's header.
	frng := rand.New(rand.NewSource(*seed + 6))
	triggers := core.NewTriggers(sys, func(key string, size int64) map[string]float64 {
		f := workload.GenFeatures(frng, "image", size)
		su.RegisterObject(key, f)
		return f
	})
	triggers.Register("uploads/", thumb, map[string]float64{"width": 256})

	sys.Run(func() {
		// An external (non-FaaS) client drops images into the bucket.
		for i, size := range []int64{48 << 10, 96 << 10, 200 << 10} {
			key := fmt.Sprintf("uploads/photo-%d.jpg", i)
			sys.RSDS.Put(sys.StorageNode, key, ofc.Blob{Size: size}, nil, true)
			sys.Env.Sleep(3 * time.Second)
		}
		sys.Env.Sleep(5 * time.Second)
	})

	fmt.Printf("triggers fired: %d\n\n", triggers.Fired())
	fmt.Println("activations (newest first):")
	for _, a := range sys.Platform.Activations(0) {
		fmt.Printf("  %s %-20s dur=%-10v E=%-10v cold=%v\n",
			a.ID, a.Function, a.Duration.Round(time.Millisecond),
			a.Extract.Round(time.Millisecond), a.Cold)
	}
	fmt.Println("\nresized outputs persisted to the store:")
	for _, key := range sys.RSDS.List("out/studio/") {
		m, _ := sys.RSDS.MetaOf(key)
		fmt.Printf("  %s (%d bytes, shadow=%v)\n", key, m.Size, m.IsShadow())
	}
}
