// Imagepipeline: run the ServerlessBench thumbnail-generation pipeline
// (extract metadata → transform → thumbnail → upload) twice on OFC and
// show how cached inputs and intermediates collapse the Extract and
// Load phases (the paper's Figure 7j scenario).
//
//	go run ./examples/imagepipeline
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"time"

	"ofc/internal/experiments"
	"ofc/internal/workload"
)

func main() {
	seed := flag.Int64("seed", 1, "random seed for training and inputs")
	flag.Parse()

	d := experiments.NewDeployment(experiments.ModeOFC, experiments.DefaultDeploy())
	pl := workload.NewImageProcessing(d.Suite, "studio", workload.ProfileNormal, 2<<30)
	for _, fn := range pl.Funcs {
		d.Register(fn)
	}
	pl.Pretrain(d.Sys.Trainer, d.Store.Profile(), 250, rand.New(rand.NewSource(*seed)))

	rng := rand.New(rand.NewSource(*seed + 1))
	pool := workload.NewInputPool(rng, "image", "shoot", []int64{512 << 10}, 1)

	d.Run(func() {
		in := pool.Inputs[0]
		pl.StageInput(d.Writer, in)

		first := pl.Run(d.Platform, in, "run-1")
		if first.Err != nil {
			panic(first.Err)
		}
		d.Env.Sleep(2 * time.Second)
		second := pl.Run(d.Platform, in, "run-2")
		if second.Err != nil {
			panic(second.Err)
		}

		show := func(label string, r *workload.PipelineResult) {
			e, t, l := r.Phases()
			fmt.Printf("%-22s E=%-10v T=%-10v L=%-10v wall=%v\n", label, e.Round(time.Millisecond),
				t.Round(time.Millisecond), l.Round(time.Millisecond), r.Duration().Round(time.Millisecond))
			for i, sr := range r.Results {
				fmt.Printf("  stage %d on node %v: E=%v T=%v L=%v\n",
					i+1, sr.Node, sr.Extract.Round(time.Microsecond),
					sr.Transform.Round(time.Millisecond), sr.Load.Round(time.Microsecond))
			}
		}
		show("first run (cold cache):", first)
		fmt.Println()
		show("second run (warm):", second)

		stats := d.Sys.RC.Stats()
		fmt.Printf("\nproxy: hits=%d (local %d) misses=%d write-backs=%d\n",
			stats.Hits, stats.LocalHits, stats.Misses, stats.WriteBacks)
	})
}
