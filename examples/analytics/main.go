// Analytics: run the MapReduce word-count pipeline over a 20 MB text
// dataset on vanilla OWK-Swift and on OFC, and compare the ETL phase
// breakdown (the paper's Figure 7i scenario).
//
//	go run ./examples/analytics
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"time"

	"ofc/internal/experiments"
	"ofc/internal/workload"
)

func main() {
	seed := flag.Int64("seed", 1, "random seed for training and inputs")
	flag.Parse()

	const inputSize = 20 << 20

	run := func(mode experiments.Mode) (e, t, l time.Duration, wall time.Duration) {
		d := experiments.NewDeployment(mode, experiments.DefaultDeploy())
		pl := workload.NewMapReduce(d.Suite, "analytics", workload.ProfileNormal, 2<<30)
		for _, fn := range pl.Funcs {
			d.Register(fn)
		}
		if d.Sys != nil {
			pl.Pretrain(d.Sys.Trainer, d.Store.Profile(), 250, rand.New(rand.NewSource(*seed)))
		}
		rng := rand.New(rand.NewSource(*seed))
		pool := workload.NewInputPool(rng, "text", "corpus", []int64{inputSize}, 1)
		d.Run(func() {
			in := pool.Inputs[0]
			pl.StageInput(d.Writer, in)
			res := pl.Run(d.Platform, in, "wc-1")
			if res.Err != nil {
				panic(res.Err)
			}
			e, t, l = res.Phases()
			wall = res.Duration()
		})
		return
	}

	fmt.Printf("MapReduce word count, %d MB input, %d MB parts\n\n", inputSize>>20, 1)
	fmt.Printf("%-12s %10s %10s %10s %12s %10s\n", "system", "E", "T", "L", "E+T+L", "wall")
	for _, mode := range []experiments.Mode{experiments.ModeSwift, experiments.ModeOFC} {
		e, t, l, wall := run(mode)
		fmt.Printf("%-12s %9.2fs %9.2fs %9.2fs %11.2fs %9.2fs\n",
			mode, e.Seconds(), t.Seconds(), l.Seconds(), (e + t + l).Seconds(), wall.Seconds())
	}
	fmt.Println("\nOFC keeps the per-part reads and the map→reduce intermediates in the")
	fmt.Println("worker-side cache; only the final result is written back to the RSDS.")
}
