// Loadtest: drive a multi-tenant FaaSLoad workload (four image tenants
// with exponential arrivals) against an OFC deployment for ten virtual
// minutes, and print per-tenant results plus the cache's growth — a
// miniature of the paper's §7.2.2 macro experiment.
//
//	go run ./examples/loadtest
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"time"

	"ofc"
	"ofc/internal/workload"
)

func main() {
	seed := flag.Int64("seed", 1, "random seed for inputs and arrival processes")
	flag.Parse()

	sys := ofc.NewSystem(ofc.DefaultOptions())
	su := workload.NewSuite()
	rng := rand.New(rand.NewSource(*seed))
	fl := workload.NewFaaSLoad(sys.Env, sys.Platform, *seed+41)

	names := []string{"wand_blur", "wand_sepia", "wand_edge", "wand_resize"}
	pools := map[string]*workload.InputPool{}
	for _, name := range names {
		spec := ofc.SpecByName(name)
		pool := workload.NewInputPool(rng, "image", "lt/"+name,
			[]int64{16 << 10, 64 << 10, 128 << 10}, 3)
		pools[name] = pool
		booked := workload.BookedMem(ofc.ProfileNormal, spec.MaxMem(pool, rng), 2<<30)
		fn := su.Build(spec, name, booked)
		sys.Register(fn)
		sys.Trainer.Pretrain(fn, workload.TrainingSamples(spec, fn, pool, 300, rng, sys.RSDS.Profile()))
		fl.AddFunctionTenant(name, spec, fn, pool, 20*time.Second, false)
	}

	const window = 10 * time.Minute
	var series []string
	sys.Env.SetHorizon(window + time.Minute)
	sys.Start()
	sys.Env.Every(time.Minute, func() bool {
		series = append(series, fmt.Sprintf("  t=%-6v cache=%6.1f MB",
			time.Duration(sys.Env.Now()).Round(time.Second), float64(sys.CacheBytes())/float64(1<<20)))
		return true
	})
	sys.Env.Go(func() {
		w := workload.RSDSWriter{Suite: su, Store: sys.RSDS, Node: sys.CtrlNode}
		for _, pool := range pools {
			pool.Stage(w)
		}
		fl.Start(window)
	})
	sys.Env.Run()

	fmt.Printf("%-12s %12s %9s %8s %8s %8s %9s\n", "tenant", "invocations", "failures", "E", "T", "L", "total")
	for _, r := range fl.Reports() {
		fmt.Printf("%-12s %12d %9d %7.2fs %7.2fs %7.2fs %8.2fs\n",
			r.Name, r.Invocations, r.Failures, r.TotalE.Seconds(), r.TotalT.Seconds(), r.TotalL.Seconds(), r.TotalExec.Seconds())
	}
	good, bad := sys.PredictionCounts()
	fmt.Printf("\nhit ratio: %.1f%%   good/bad predictions: %d/%d\n",
		sys.RC.HitRatio()*100, good, bad)
	fmt.Println("\ncache size over time:")
	for _, line := range series {
		fmt.Println(line)
	}
}
