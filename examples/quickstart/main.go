// Quickstart: deploy an OFC stack, register a function, and watch the
// opportunistic cache turn a ~180 ms Swift-bound invocation into a
// ~30 ms one on the second call.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"time"

	"ofc"
)

func main() {
	sys := ofc.NewSystem(ofc.DefaultOptions())

	// A little image function: read, compute for 20 ms with an
	// input-dependent footprint, write a half-size result.
	blur := &ofc.Function{
		Name: "blur", Tenant: "demo", MemoryBooked: 512 << 20,
		InputType: "image", ArgNames: []string{"sigma"},
		Body: func(ctx *ofc.Ctx) error {
			blob, err := ctx.Extract(ctx.InputKeys()[0])
			if err != nil {
				return err
			}
			peak := int64(72<<20) + blob.Size*120 + int64(ctx.Arg("sigma")*8)*(1<<20)
			if err := ctx.Transform(20*time.Millisecond, peak); err != nil {
				return err
			}
			return ctx.Load("demo/out.jpg", ofc.Blob{Size: blob.Size / 2}, ofc.KindFinal)
		},
	}
	sys.Register(blur)

	// Mature the memory/benefit models offline (FaaSLoad would collect
	// this during normal operation; see §5.3 of the paper).
	schema := sys.Pred.Schema(blur)
	var samples []ofc.Sample
	for i := 0; i < 200; i++ {
		size := float64((1 + i%8) * 16 << 10)
		sigma := float64(1 + i%4)
		vals := make([]float64, len(schema.Names()))
		for j, n := range schema.Names() {
			switch n {
			case "size":
				vals[j] = size
			case "width":
				vals[j] = 800
			case "height":
				vals[j] = 600
			case "channels":
				vals[j] = 3
			case "sigma":
				vals[j] = sigma
			}
		}
		samples = append(samples, ofc.Sample{
			Vals:    vals,
			PeakMem: int64(72<<20) + int64(size*120) + int64(sigma*8)*(1<<20),
			Extract: 40 * time.Millisecond, Transform: 20 * time.Millisecond, Load: 115 * time.Millisecond,
			BenefitKnown: true,
		})
	}
	sys.Trainer.Pretrain(blur, samples)

	features := map[string]float64{"size": 64 << 10, "width": 800, "height": 600, "channels": 3}
	req := func() *ofc.Request {
		return &ofc.Request{
			Function:      blur,
			InputKeys:     []string{"demo/in.jpg"},
			Args:          map[string]float64{"sigma": 2},
			InputFeatures: features,
		}
	}

	sys.Run(func() {
		// Stage the input in the Swift-like object store.
		sys.RSDS.Put(sys.CtrlNode, "demo/in.jpg", ofc.Blob{Size: 64 << 10}, nil, false)
		sys.RSDS.SetFeatures("demo/in.jpg", features)

		first := sys.Platform.Invoke(req())
		sys.Env.Sleep(time.Second) // let the cache admission land
		second := sys.Platform.Invoke(req())

		show := func(label string, r *ofc.Result) {
			fmt.Printf("%-18s E=%-10v T=%-10v L=%-10v total=%-10v sandbox=%dMB cold=%v\n",
				label, r.Extract, r.Transform, r.Load, r.Extract+r.Transform+r.Load,
				r.SandboxMem>>20, r.ColdStart)
		}
		show("first (miss):", first)
		show("second (hit):", second)
		fmt.Printf("\ncache stats: %+v\n", sys.RC.Stats())
		fmt.Printf("speedup on E phase: %.0fx\n", float64(first.Extract)/float64(second.Extract))
	})
}
