// Package ofc is a from-scratch Go reproduction of "OFC: An
// Opportunistic Caching System for FaaS Platforms" (Mvondo et al.,
// EuroSys 2021): a transparent, vertically and horizontally elastic
// in-memory caching system for FaaS platforms that feeds on the memory
// tenants over-book and keep-alive sandboxes leave idle.
//
// The repository implements every subsystem the paper builds on — an
// OpenWhisk-like FaaS platform, a RAMCloud-like distributed in-memory
// store, a Swift-like object store, C4.5/RandomForest/Hoeffding
// decision trees — over a deterministic discrete-event simulation of
// the paper's six-machine testbed, and regenerates every table and
// figure of the evaluation.
//
// Quick start:
//
//	sys := ofc.NewSystem(ofc.DefaultOptions())
//	fn := &ofc.Function{
//	    Name: "hello", Tenant: "me", MemoryBooked: 256 << 20,
//	    Body: func(ctx *ofc.Ctx) error {
//	        blob, err := ctx.Extract("bucket/in")
//	        if err != nil { return err }
//	        if err := ctx.Transform(20*time.Millisecond, 96<<20); err != nil { return err }
//	        return ctx.Load("bucket/out", ofc.Blob{Size: blob.Size}, ofc.KindFinal)
//	    },
//	}
//	sys.Register(fn)
//	sys.Run(func() {
//	    sys.RSDS.Put(sys.CtrlNode, "bucket/in", ofc.Blob{Size: 64 << 10}, nil, false)
//	    res := sys.Platform.Invoke(&ofc.Request{Function: fn, InputKeys: []string{"bucket/in"}})
//	    fmt.Println(res.Duration())
//	})
//
// See the examples directory for runnable programs and cmd/ofc-bench
// for the full evaluation harness.
package ofc

import (
	"ofc/internal/core"
	"ofc/internal/faas"
	"ofc/internal/kvstore"
	"ofc/internal/objstore"
	"ofc/internal/sim"
	"ofc/internal/simnet"
	"ofc/internal/workload"
)

// Core system types.
type (
	// System is a deployed OFC stack (platform + cache + RSDS + ML).
	System = core.System
	// Options configures a System.
	Options = core.Options
	// Predictor serves per-invocation memory and caching-benefit
	// predictions.
	Predictor = core.Predictor
	// ModelTrainer maintains the per-function models.
	ModelTrainer = core.ModelTrainer
	// Sample is one training observation.
	Sample = core.Sample
	// CacheAgent manages one node's cache share.
	CacheAgent = core.CacheAgent
	// RCLib is the transparent storage proxy.
	RCLib = core.RCLib
)

// FaaS platform types.
type (
	// Function is a registered cloud function.
	Function = faas.Function
	// Request is one invocation request.
	Request = faas.Request
	// Result is an invocation outcome with per-phase timing.
	Result = faas.Result
	// Ctx is the execution context of a function body.
	Ctx = faas.Ctx
	// Blob is an object payload.
	Blob = kvstore.Blob
	// ObjKind classifies written objects for the caching policy.
	ObjKind = faas.ObjKind
)

// Object kinds (§6.3 caching policy).
const (
	KindInput        = faas.KindInput
	KindIntermediate = faas.KindIntermediate
	KindFinal        = faas.KindFinal
)

// Simulation substrate types, for callers that build custom scenarios.
type (
	// Env is the discrete-event simulation environment.
	Env = sim.Env
	// Network is the cluster fabric model.
	Network = simnet.Network
	// NodeID identifies a node.
	NodeID = simnet.NodeID
)

// Workload types (the paper's 19 functions, 4 pipelines, FaaSLoad).
type (
	// Spec is a synthetic single-stage function model.
	Spec = workload.Spec
	// Pipeline is a multi-stage application.
	Pipeline = workload.Pipeline
	// InputPool is a prepared input dataset.
	InputPool = workload.InputPool
	// FaaSLoad is the multi-tenant load injector.
	FaaSLoad = workload.FaaSLoad
	// TenantProfile is the memory-booking behaviour (§7.2.2).
	TenantProfile = workload.TenantProfile
)

// Tenant profiles.
const (
	ProfileNormal   = workload.ProfileNormal
	ProfileNaive    = workload.ProfileNaive
	ProfileAdvanced = workload.ProfileAdvanced
)

// NewSystem assembles a full OFC deployment (Figure 4): a controller
// node, a storage node and Options.Workers worker nodes.
func NewSystem(opts Options) *System { return core.NewSystem(opts) }

// DefaultOptions mirrors the paper's testbed shape.
func DefaultOptions() Options { return core.DefaultOptions() }

// NewEnv creates a standalone simulation environment.
func NewEnv(seed int64) *Env { return sim.NewEnv(seed) }

// Specs returns the 19 single-stage multimedia function models.
func Specs() []*Spec { return workload.Specs() }

// SpecByName finds one of the 19 function models.
func SpecByName(name string) *Spec { return workload.SpecByName(name) }

// SwiftProfile is the paper-calibrated Swift latency model.
func SwiftProfile() objstore.Profile { return objstore.SwiftProfile() }

// S3Profile is the AWS-S3-like latency model of the motivation runs.
func S3Profile() objstore.Profile { return objstore.S3Profile() }
